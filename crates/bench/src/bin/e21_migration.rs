//! E21 — Crash-safe live migration of individual resident tenants.
//!
//! The fleet's two-phase protocol (see `vfpga::migrate` and DESIGN.md
//! §16) moves one tenant's column range between devices while its
//! backlog keeps running: *prepare* reserves the destination, snapshots
//! via the readback-priced checkpoint path, and journals a
//! `MigrationIntent` on both sides; *commit* downloads on the
//! destination (delta-anchored when a ghost exists), flips the placement
//! atomically, journals `MigrationCommit`, and frees the source columns.
//!
//! The sweep: migration rate x crash window x delta copy on/off. Every
//! cell — including the ones that kill a host inside each of the three
//! distinguishable protocol windows — is differentially verified
//! in-process against the migration-free fleet baseline with
//! [`vfpga::diff_reports`]: journal replay must resolve every window
//! (intent-without-commit undone, commit-without-free redone
//! idempotently) to the exact task outcomes an undisturbed run produces,
//! with zero work lost. A live-rebalance cell piles every tenant onto
//! one device by affinity and shows migrations correcting the placement
//! drift tenant-by-tenant onto the idle devices.
//!
//! Flags: `--seed N` (default 0xE21), `--smoke` (reduced sweep for CI),
//! `--threads N` (sweep-point parallelism), `--json <path>`
//! (machine-readable export).

use bench::json::Json;
use bench::report::{f3, Table};
use bench::setup::compile_suite_lib_sw;
use bench::{arg_u64, flag, run_sweep, threads_arg, Exporter, HostProfile};
use fpga::{ConfigPort, ConfigTiming};
use fsim::{MigrationCrashWindow, SimDuration, SimRng};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;
use vfpga::manager::partition::{PartitionManager, PartitionMode};
use vfpga::{
    diff_reports, run_fleet, CheckpointConfig, CircuitId, CircuitLib, FleetConfig, FleetReport,
    MigrationPlan, Op, PlacementPolicy, PreemptAction, RoundRobinScheduler, ShardCtx, System,
    SystemConfig, TaskSpec, VfpgaError,
};
use workload::{tenant_tasks, Domain, MixParams, TenantMixParams};

fn specs(ids: &[CircuitId], seed: u64, affinity_devices: u32) -> Vec<TaskSpec> {
    let mut rng = SimRng::new(seed);
    tenant_tasks(
        &TenantMixParams {
            base: MixParams {
                tasks: 12,
                mean_interarrival: SimDuration::from_millis(2),
                mean_cpu_burst: SimDuration::from_millis(2),
                fpga_ops_per_task: 4,
                cycles: (60_000, 250_000),
            },
            tenants: 4,
            // The rebalance cell pins every tenant's affinity hint to
            // device 0 (`affinity_devices: 1`) so migrations have drift
            // to correct; the other cells spread hints round-robin.
            affinity_devices,
            ..Default::default()
        },
        ids,
        &mut rng,
    )
}

/// Re-price every FPGA op as host CPU time — the degradation path. No
/// e21 cell saturates the fleet, so this is dead in practice, but the
/// shard builder must handle the flag to be a valid `run_fleet` factory.
fn softwareize(specs: &[TaskSpec], sw: &BTreeMap<u32, u64>) -> Vec<TaskSpec> {
    specs
        .iter()
        .cloned()
        .map(|mut s| {
            for op in &mut s.ops {
                if let Op::FpgaRun { circuit, cycles } = *op {
                    let ns = sw.get(&circuit.0).copied().unwrap_or(1);
                    *op = Op::Cpu(SimDuration::from_nanos(ns.saturating_mul(cycles)));
                }
            }
            s
        })
        .collect()
}

fn shard_builder(
    lib: Arc<CircuitLib>,
    sw: Arc<BTreeMap<u32, u64>>,
    timing: ConfigTiming,
    delta: bool,
) -> impl FnMut(&ShardCtx<'_>) -> Result<System<PartitionManager, RoundRobinScheduler>, VfpgaError>
{
    move |ctx| {
        let specs = if ctx.software {
            softwareize(ctx.specs, &sw)
        } else {
            ctx.specs.to_vec()
        };
        let mut mgr = PartitionManager::new(
            lib.clone(),
            timing,
            PartitionMode::Variable,
            PreemptAction::SaveRestore,
        )?;
        if delta {
            mgr.enable_delta();
        }
        Ok(System::new(
            lib.clone(),
            mgr,
            RoundRobinScheduler::new(SimDuration::from_millis(4)),
            SystemConfig {
                preempt: PreemptAction::SaveRestore,
                ..Default::default()
            },
            specs,
        ))
    }
}

#[derive(Clone, Copy)]
struct Point {
    rate_name: &'static str,
    rate: f64,
    max: u32,
    window: Option<MigrationCrashWindow>,
    delta: bool,
    rebalance: bool,
}

struct Cell {
    label: String,
    point: Point,
    divergences: Vec<vfpga::Divergence>,
    fleet: FleetReport,
}

fn window_name(w: Option<MigrationCrashWindow>) -> &'static str {
    w.map(|w| w.name()).unwrap_or("no-crash")
}

fn main() {
    let seed = arg_u64("--seed", 0xE21);
    let smoke = flag("--smoke");
    let threads = threads_arg();
    let mut host = HostProfile::new(threads);
    let spec = fpga::device::part("VF400");
    let (lib, ids, sw) = host.phase(bench::sections::PHASE_COMPILE, || {
        compile_suite_lib_sw(&[Domain::Telecom, Domain::Storage], spec)
    });
    let sw = Arc::new(sw);
    let timing = ConfigTiming {
        spec,
        port: ConfigPort::SerialFast,
    };

    let base_cfg = |devices: u32| {
        FleetConfig::new(devices)
            .with_max_shards_per_device(4)
            .with_checkpoints(CheckpointConfig::new(SimDuration::from_millis(1)))
    };

    // Migration-free references, one per delta flavor: the protocol must
    // reproduce these task outcomes exactly, crashes or not.
    let baselines: Vec<FleetReport> = host.phase(bench::sections::PHASE_BASELINE, || {
        [false, true]
            .iter()
            .map(|&delta| {
                run_fleet(
                    &base_cfg(2),
                    specs(&ids, seed, 2),
                    shard_builder(lib.clone(), sw.clone(), timing, delta),
                )
                .unwrap_or_else(|e| {
                    eprintln!("baseline fleet run failed (delta {delta}): {e}");
                    std::process::exit(1);
                })
            })
            .collect()
    });

    let windows = [
        MigrationCrashWindow::SourceMidPrepare,
        MigrationCrashWindow::DestMidCopy,
        MigrationCrashWindow::BetweenCommitAndFree,
    ];
    let mut points: Vec<Point> = Vec::new();
    for &delta in &[false, true] {
        points.push(Point {
            rate_name: "none",
            rate: 0.0,
            max: 0,
            window: None,
            delta,
            rebalance: false,
        });
        if !smoke {
            points.push(Point {
                rate_name: "slow",
                rate: 120.0,
                max: 1,
                window: None,
                delta,
                rebalance: false,
            });
        }
        points.push(Point {
            rate_name: "churn",
            rate: 400.0,
            max: 3,
            window: None,
            delta,
            rebalance: false,
        });
        // Crash inside each protocol window: the crash targets the first
        // migration attempt, and replay must resolve it.
        for &w in &windows {
            points.push(Point {
                rate_name: "churn",
                rate: 400.0,
                max: 2,
                window: Some(w),
                delta,
                rebalance: false,
            });
        }
    }
    points.push(Point {
        rate_name: "rebalance",
        rate: 400.0,
        max: 4,
        window: None,
        delta: false,
        rebalance: true,
    });

    let cells: Vec<Cell> = host.phase(bench::sections::PHASE_SWEEP, || {
        run_sweep(threads, &points, |_, &p| {
            // Three devices for the rebalance cell: every tenant starts
            // piled on device 0, and least-loaded destination picking
            // must spread them across BOTH idle devices, not just swing
            // the pile to the other end of a two-device seesaw.
            let mut cfg =
                base_cfg(if p.rebalance { 3 } else { 2 }).with_migrations(MigrationPlan {
                    seed: seed ^ 0x515EED,
                    rate_per_s: p.rate,
                    max_migrations: p.max,
                    delta_copy: p.delta,
                    crash: p.window.map(|w| (0, w)),
                });
            // The rebalance cell pins everything onto device 0 by
            // affinity, then lets migrations spread the load back out.
            let sp = if p.rebalance {
                cfg = cfg.with_placement(PlacementPolicy::Affinity);
                specs(&ids, seed, 1)
            } else {
                specs(&ids, seed, 2)
            };
            let fleet = run_fleet(
                &cfg,
                sp,
                shard_builder(lib.clone(), sw.clone(), timing, p.delta),
            )
            .unwrap_or_else(|e| {
                eprintln!(
                    "fleet run failed ({}/{}): {e}",
                    p.rate_name,
                    window_name(p.window)
                );
                std::process::exit(1);
            });
            // The rebalance cell runs a different initial placement, so
            // its reference is the single-shard affinity layout without
            // migrations; every other cell diffs against the shared
            // round-robin baseline of its delta flavor.
            let divergences = if p.rebalance {
                let reb_base = run_fleet(
                    &base_cfg(3).with_placement(PlacementPolicy::Affinity),
                    specs(&ids, seed, 1),
                    shard_builder(lib.clone(), sw.clone(), timing, p.delta),
                )
                .expect("rebalance baseline runs");
                diff_reports(&reb_base.merged, &fleet.merged)
            } else {
                diff_reports(&baselines[p.delta as usize].merged, &fleet.merged)
            };
            Cell {
                label: format!(
                    "{}/{}{}",
                    p.rate_name,
                    window_name(p.window),
                    if p.delta { "/delta" } else { "" }
                ),
                point: p,
                divergences,
                fleet,
            }
        })
    });

    // In-process acceptance gates: the protocol's whole claim is that a
    // crash in any window changes *nothing* about task outcomes.
    let mut migrations_seen = 0u64;
    for c in &cells {
        let st = c.fleet.stats;
        let r = &c.fleet.merged;
        let n = specs(&ids, seed, 2).len();
        assert_eq!(r.tasks.len(), n, "{}: task conservation", c.label);
        let flagged = r.tasks.iter().filter(|t| t.lost_in_flight).count() as u64;
        assert_eq!(flagged, st.lost_in_flight, "{}: lost accounting", c.label);
        if st.lost_in_flight != 0 {
            eprintln!("E21 FAILED: cell {} lost work in flight: {st:?}", c.label);
            std::process::exit(1);
        }
        if !c.divergences.is_empty() {
            eprintln!("E21 FAILED: cell {} diverged from baseline:", c.label);
            for d in &c.divergences {
                eprintln!("  {d}");
            }
            std::process::exit(1);
        }
        if c.point.rate_name == "none" && !st.is_zero() {
            eprintln!(
                "E21 FAILED: zero-rate cell {} moved fleet counters: {st:?}",
                c.label
            );
            std::process::exit(1);
        }
        match c.point.window {
            // Commit won: replay must redo the source-free, never abort.
            Some(MigrationCrashWindow::BetweenCommitAndFree) if st.migration_redone_frees == 0 => {
                eprintln!("E21 FAILED: {} redid no source-free: {st:?}", c.label);
                std::process::exit(1);
            }
            Some(MigrationCrashWindow::BetweenCommitAndFree) => {}
            // Intent without commit: replay must roll the tenant back.
            Some(_) if st.migration_aborts == 0 => {
                eprintln!("E21 FAILED: {} aborted nothing: {st:?}", c.label);
                std::process::exit(1);
            }
            Some(_) => {}
            None if c.point.rate > 0.0 => {
                if st.tenant_migrations == 0 {
                    eprintln!("E21 FAILED: {} migrated nothing: {st:?}", c.label);
                    std::process::exit(1);
                }
                if st.migration_aborts != 0 {
                    eprintln!("E21 FAILED: {} aborted without a crash: {st:?}", c.label);
                    std::process::exit(1);
                }
            }
            None => {}
        }
        if c.point.rebalance {
            if st.tenant_migrations < 2 {
                eprintln!("E21 FAILED: rebalance cell corrected fewer than 2 tenants: {st:?}");
                std::process::exit(1);
            }
            let hosts: BTreeSet<u32> = c
                .fleet
                .shards
                .iter()
                .filter(|s| !s.tenants.is_empty())
                .filter_map(|s| s.final_host.map(|d| d.0))
                .collect();
            if hosts.len() < 2 {
                eprintln!("E21 FAILED: rebalance left every tenant on one device: {hosts:?}");
                std::process::exit(1);
            }
        }
        migrations_seen += st.tenant_migrations;
    }
    if migrations_seen == 0 {
        eprintln!("E21 FAILED: no cell exercised a live migration");
        std::process::exit(1);
    }

    let mut ex = Exporter::new("e21", "live migration rate x crash window x delta copy");
    ex.seed(seed)
        .param("device", spec.name)
        .param("tasks", 12u64)
        .param("tenants", 4u64)
        .param("smoke", smoke);

    let mut t = Table::new(
        "E21: crash-safe live migration (partition shards, RR 4ms, ckpt 1ms + journal)",
        &[
            "cell",
            "migrations",
            "aborts",
            "redone-frees",
            "migr-claims",
            "lost",
            "redo (ms)",
            "mig p50 (ms)",
            "mig p95 (ms)",
            "makespan (ms)",
            "diverged",
        ],
    );
    for c in &cells {
        let st = c.fleet.stats;
        let lat = &c.fleet.migration_lat;
        t.row(vec![
            c.label.clone(),
            st.tenant_migrations.to_string(),
            st.migration_aborts.to_string(),
            st.migration_redone_frees.to_string(),
            st.migrated_claims.to_string(),
            st.lost_in_flight.to_string(),
            f3(st.redo_time.as_secs_f64() * 1e3),
            f3(lat.quantile_ns(0.50) as f64 / 1e6),
            f3(lat.quantile_ns(0.95) as f64 / 1e6),
            f3(c.fleet.merged.makespan.as_secs_f64() * 1e3),
            c.divergences.len().to_string(),
        ]);
        ex.report(&c.label, &c.fleet.merged);
        ex.metrics().inc("tenant_migrations", st.tenant_migrations);
        ex.metrics().inc("migration_aborts", st.migration_aborts);
        ex.metrics()
            .inc("migration_redone_frees", st.migration_redone_frees);
        ex.metrics().inc("fleet_lost_in_flight", st.lost_in_flight);
    }

    t.print();
    ex.table(&t);
    host.points(points.len());
    ex.host(&host);
    ex.write_if_requested();

    if let Some(path) = bench::json_arg() {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("failed to re-read {}: {e}", path.display());
            std::process::exit(1);
        });
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("emitted JSON does not parse back: {e}");
            std::process::exit(1);
        });
        let reports = doc.get("reports").and_then(Json::as_arr).unwrap_or(&[]);
        if doc.get("schema").is_none() || reports.len() != cells.len() {
            eprintln!("emitted JSON is missing sections");
            std::process::exit(1);
        }
        eprintln!("export parses back OK ({} reports)", reports.len());
    }

    println!("\nEvery cell — including a host crash inside each of the three migration");
    println!("windows — produced task outcomes identical to the migration-free baseline");
    println!("(the bench aborts otherwise): an intent without a commit rolls the tenant");
    println!("back onto its source with the backlog intact, and a commit without the");
    println!("source-free is completed idempotently by journal replay. The rebalance");
    println!("cell starts with every tenant piled on one device and ends with the");
    println!("placement drift corrected tenant-by-tenant onto the idle device.");
}
