//! `bench_perf` — the pinned host-performance suite and its regression
//! harness.
//!
//! ```sh
//! bench_perf [--smoke] [--threads N] [--out PATH]
//! bench_perf --compare OLD.json NEW.json [--tolerance-pct P]
//! ```
//!
//! The first form runs the suite (compile cold/warm, full/partial
//! download, checkpointed crash/replay, profiled macro sweep), prints the
//! case table and span tree, and writes `BENCH_<git-short-sha>.json`
//! (override with `--out`). The written file is read back and re-parsed
//! through `bench::json` before the process exits, so a malformed export
//! fails loudly. Everything outside the volatile `host` section is
//! byte-identical at any `--threads` value — `jdiff` two runs to check.
//!
//! The second form compares two perf documents: each case's best-of-N
//! wall time (`min_ns`, robust to one-off scheduler stalls) may drift
//! within the tolerance (default 30%), the deterministic `sim` section
//! may not drift at all. Exit status 0 when clean, 1 when
//! regressions or sim changes were flagged, 2 on usage/schema/I/O errors.

use bench::perf::{self, PerfConfig};
use bench::{arg_u64, flag, threads_arg, Json};

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_perf: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_perf: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn compare_mode(old_path: &str, new_path: &str) -> ! {
    let tol = arg_u64("--tolerance-pct", 30) as f64 / 100.0;
    let old = load(old_path);
    let new = load(new_path);
    let out = perf::compare(&old, &new, tol).unwrap_or_else(|e| {
        eprintln!("bench_perf: {e}");
        std::process::exit(2);
    });
    for r in &out.regressions {
        println!(
            "REGRESSION {}: {} -> {} ns/iter ({:.2}x, tolerance {:.0}%)",
            r.case,
            r.old_ns,
            r.new_ns,
            r.ratio,
            tol * 100.0
        );
    }
    for m in &out.missing {
        println!("MISSING case {m}: present in {old_path}, absent from {new_path}");
    }
    for s in &out.sim_changes {
        println!("SIM CHANGE {s}: deterministic section differs (not noise)");
    }
    if out.is_clean() {
        println!(
            "zero regressions ({old_path} -> {new_path}, tolerance {:.0}%)",
            tol * 100.0
        );
        std::process::exit(0);
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--compare") {
        match (args.get(i + 1), args.get(i + 2)) {
            (Some(a), Some(b)) => compare_mode(a, b),
            _ => {
                eprintln!("usage: bench_perf --compare <old.json> <new.json> [--tolerance-pct P]");
                std::process::exit(2);
            }
        }
    }

    let cfg = PerfConfig {
        threads: threads_arg(),
        smoke: flag("--smoke"),
    };
    let (doc, spans, table) = perf::run_suite(cfg);
    table.print();
    println!();
    print!("{}", spans.render_tree());

    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--out=").map(str::to_string))
        })
        .unwrap_or_else(|| format!("BENCH_{}.json", perf::git_short_sha()));
    let text = doc.render();
    if let Err(e) = std::fs::write(&out_path, &text) {
        eprintln!("bench_perf: failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    // Read-back verification: the file on disk must parse through the
    // same reader every consumer uses.
    let back = load(&out_path);
    if back.get("schema") != Some(&Json::Str(perf::PERF_SCHEMA.to_string())) {
        eprintln!("bench_perf: {out_path} round-tripped with a wrong schema field");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path} ({} bytes, parse-verified)", text.len());
}
