//! E7 — Overlaying: resident common functions vs swapped rare ones (§2).
//!
//! Claim operationalized: "overlaying configures part of the FPGA to
//! compute common functions which are frequently used, while the remaining
//! part is used to download specific functions which are typically rarely
//! used or mutually exclusive."
//!
//! Tasks draw circuits from a Zipf popularity distribution. Sweeping how
//! many of the most popular circuits are made permanently resident (and
//! the replacement policy for the overlay slots) shows the hit-rate and
//! overhead trade-off.

use bench::report::{f3, pct, Table};
use bench::setup::compile_suite_lib;
use bench::{run_sweep, threads_arg, Exporter, HostProfile};
use fpga::{ConfigPort, ConfigTiming};
use fsim::rng::Zipf;
use fsim::{SimDuration, SimRng, SimTime};
use vfpga::manager::overlay::{OverlayManager, Replacement};
use vfpga::{Op, PreemptAction, RoundRobinScheduler, System, SystemConfig, TaskSpec};
use workload::Domain;

fn main() {
    let threads = threads_arg();
    let mut host = HostProfile::new(threads);
    let spec = fpga::device::part("VF800"); // 32 cols
    let (lib, ids) = host.phase(bench::sections::PHASE_COMPILE, || {
        compile_suite_lib(&[Domain::Telecom, Domain::Storage], spec)
    });
    let timing = ConfigTiming {
        spec,
        port: ConfigPort::SerialFast,
    };

    // Popularity: rank 0 = most popular (Zipf s=1.2).
    let zipf = Zipf::new(ids.len(), 1.2);
    let build_specs = |seed: u64| -> Vec<TaskSpec> {
        let mut rng = SimRng::new(seed);
        let mut specs = Vec::new();
        let mut at = SimTime::ZERO;
        for i in 0..60 {
            at += SimDuration::from_micros(rng.range_u64(100, 2_000));
            let cid = ids[zipf.sample(&mut rng)];
            specs.push(TaskSpec::new(
                format!("t{i}"),
                at,
                vec![
                    Op::Cpu(SimDuration::from_micros(rng.range_u64(100, 1_000))),
                    Op::FpgaRun {
                        circuit: cid,
                        cycles: rng.range_u64(20_000, 100_000),
                    },
                ],
            ));
        }
        specs
    };

    // Scarce overlay area: slots sized so only ~3 specific circuits fit at
    // once (an overlay with more slots than circuits never replaces).
    let widest = ids.iter().map(|&i| lib.get(i).shape().0).max().unwrap();
    let mut ex = Exporter::new("e07", "overlay resident share and replacement policy");
    ex.seed(0xE07)
        .param("device", spec.name)
        .param("tasks", 60u64)
        .param("zipf_s", 1.2f64)
        .param("circuits", ids.len());
    let mut t = Table::new(
        "E7: overlay — resident share and replacement policy (Zipf s=1.2)",
        &[
            "resident top-k",
            "policy",
            "slots",
            "hit rate",
            "downloads",
            "evictions",
            "overhead frac",
            "makespan (s)",
        ],
    );
    let points: Vec<(usize, Replacement)> = (0..=2usize)
        .flat_map(|k| {
            [Replacement::Lru, Replacement::Fifo, Replacement::Lfu]
                .into_iter()
                .map(move |p| (k, p))
        })
        .collect();
    let results = host.phase(bench::sections::PHASE_SWEEP, || {
        run_sweep(threads, &points, |_, &(k, policy)| {
            let common: Vec<_> = ids[..k].to_vec();
            let common_w: u32 = common.iter().map(|&i| lib.get(i).shape().0).sum();
            let slot_w = widest.max((timing.spec.cols - common_w) / 3);
            let mgr = OverlayManager::new(lib.clone(), timing, common, slot_w, policy).unwrap();
            let slots = mgr.slot_count();
            let r = System::new(
                lib.clone(),
                mgr,
                RoundRobinScheduler::new(SimDuration::from_millis(5)),
                SystemConfig {
                    preempt: PreemptAction::SaveRestore,
                    ..Default::default()
                },
                build_specs(0xE07),
            )
            .with_trace_capacity(4096)
            .run()
            .unwrap();
            (k, policy, slots, r)
        })
    });
    for (k, policy, slots, r) in &results {
        ex.report(&format!("top{k}/{policy:?}"), r);
        let s = r.manager_stats;
        let hit_rate = s.hits as f64 / (s.hits + s.misses).max(1) as f64;
        t.row(vec![
            k.to_string(),
            format!("{policy:?}"),
            slots.to_string(),
            pct(hit_rate),
            s.downloads.to_string(),
            s.evictions.to_string(),
            pct(r.overhead_fraction()),
            f3(r.makespan.as_secs_f64()),
        ]);
    }
    t.print();
    ex.table(&t);
    host.points(points.len());
    ex.host(&host);
    ex.write_if_requested();
}
