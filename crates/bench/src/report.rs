//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints one or more [`Table`]s: a title, a
//! header row, and aligned data rows — the "rows/series the paper reports"
//! format EXPERIMENTS.md captures.

/// A printable results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a ratio as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format milliseconds.
pub fn ms(v: f64) -> String {
    format!("{v:.3} ms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| name   | value |"));
        assert!(s.contains("| longer | 22    |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(ms(12.3456), "12.346 ms");
    }
}
