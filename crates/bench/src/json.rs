//! A minimal hand-rolled JSON writer.
//!
//! The container has no serde; experiments need only to *emit* JSON, never
//! parse it, so a small value tree with a pretty-printer is enough. Object
//! keys keep insertion order — exports are byte-stable for identical runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An unsigned integer (kept exact — counters can exceed 2^53).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v.into())
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// An object under construction (fluent, insertion-ordered).
#[derive(Debug, Clone, Default)]
pub struct Obj {
    fields: Vec<(String, Json)>,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Add (or append — duplicate keys are the caller's bug) a field.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Finish into a [`Json::Obj`].
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

impl From<Obj> for Json {
    fn from(o: Obj) -> Json {
        o.build()
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Json {
    fn write_into(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // Display for f64 is the shortest round-trip form, but
                    // bare "1" would re-read as an integer; keep it a float.
                    if *v == v.trunc() && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested ones break.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write_into(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(&PAD.repeat(indent + 1));
                        item.write_into(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&PAD.repeat(indent));
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&PAD.repeat(indent + 1));
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::UInt(7).render(), "7\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::Num(1.5).render(), "1.5\n");
        assert_eq!(Json::Num(2.0).render(), "2.0\n", "floats keep a decimal");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
    }

    #[test]
    fn strings_escape() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let j = Obj::new().set("z", 1u64).set("a", "x").build();
        let r = j.render();
        assert!(r.find("\"z\"").unwrap() < r.find("\"a\"").unwrap());
    }

    #[test]
    fn scalar_arrays_inline_nested_break() {
        let flat = Json::Arr(vec![Json::UInt(1), Json::UInt(2)]);
        assert_eq!(flat.render(), "[1, 2]\n");
        let nested = Json::Arr(vec![flat.clone()]);
        assert!(nested.render().contains('\n'));
    }

    #[test]
    fn render_is_valid_enough_to_eyeball() {
        let j = Obj::new()
            .set("schema", "vfpga-bench/1")
            .set("values", Json::Arr(vec![Json::Num(0.25), Json::UInt(4)]))
            .set("nested", Obj::new().set("empty", Json::Arr(vec![])))
            .build();
        let r = j.render();
        assert!(r.starts_with("{\n"));
        assert!(r.contains("\"schema\": \"vfpga-bench/1\""));
        assert!(r.contains("\"empty\": []"));
        assert!(r.ends_with("}\n"));
    }
}
