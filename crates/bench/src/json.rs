//! Re-export of the shared JSON value tree.
//!
//! The writer/reader moved to [`fsim::json`] so the OS layer can use the
//! same format for checkpoint serialization; this shim keeps the
//! historical `bench::json::Json` paths working.

pub use fsim::json::*;
