//! A tiny wall-clock microbenchmark harness.
//!
//! The build image carries no third-party crates, so the Criterion benches
//! were replaced with this hand-rolled runner: each case is timed over a
//! fixed number of iterations after a warm-up, and the per-iteration
//! mean/min/max are printed in a table. It is deliberately simple — no
//! outlier rejection, no statistical tests — but stable enough to compare
//! hot paths release-to-release.

use crate::report::Table;
use std::hint::black_box;
use std::time::Instant;

/// One benchmark suite: a named collection of timed cases.
pub struct Suite {
    table: Table,
}

impl Suite {
    /// New suite with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Suite {
            table: Table::new(
                title,
                &["case", "iters", "mean/iter", "min/iter", "max/iter"],
            ),
        }
    }

    /// Time `f` over `iters` iterations (plus `iters / 10 + 1` warm-up
    /// runs). The closure's return value is black-boxed so the work is not
    /// optimized away.
    pub fn case<R>(&mut self, name: &str, iters: u32, mut f: impl FnMut() -> R) -> &mut Self {
        assert!(iters > 0, "need at least one iteration");
        for _ in 0..iters / 10 + 1 {
            black_box(f());
        }
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut total = 0.0f64;
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed().as_secs_f64();
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        self.table.row(vec![
            name.into(),
            iters.to_string(),
            fmt_secs(total / iters as f64),
            fmt_secs(min),
            fmt_secs(max),
        ]);
        self
    }

    /// Print the results table.
    pub fn print(&self) {
        self.table.print();
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_rows() {
        let mut s = Suite::new("t");
        s.case("noop", 3, || 1 + 1).case("other", 2, || 2 * 2);
        assert_eq!(s.table.len(), 2);
        assert_eq!(s.table.rows()[0][0], "noop");
        assert_eq!(s.table.rows()[0][1], "3");
        assert_eq!(s.table.rows()[1][0], "other");
    }

    #[test]
    fn fmt_ranges() {
        assert!(fmt_secs(2.0).ends_with(" s"));
        assert!(fmt_secs(2e-3).ends_with(" ms"));
        assert!(fmt_secs(2e-6).ends_with(" us"));
        assert!(fmt_secs(2e-9).ends_with(" ns"));
    }
}
