//! Parallel determinism: `--threads 4` must produce byte-identical JSON
//! exports to `--threads 1` once the volatile `host` section is stripped.
//!
//! These tests execute the real experiment binaries (the exact artifacts
//! CI ships), not a reimplementation of their sweeps, so they also pin
//! the report/table/timeline ordering contract of the sweep engine: the
//! join loop must scatter results back in point order regardless of
//! which worker finished first.

use bench::json::Json;
use bench::{strip_host, strip_volatile};
use std::path::PathBuf;
use std::process::Command;

fn run_export(exe: &str, extra: &[&str], threads: usize, tag: &str) -> String {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "vfpga-det-{tag}-t{threads}-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let status = Command::new(exe)
        .args(extra)
        .arg("--threads")
        .arg(threads.to_string())
        .arg("--json")
        .arg(&path)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("experiment binary must spawn");
    assert!(status.success(), "{exe} --threads {threads} failed");
    let text = std::fs::read_to_string(&path).expect("export file must exist");
    let _ = std::fs::remove_file(&path);
    let doc = Json::parse(&text).expect("export must parse");
    assert!(
        doc.get("host").is_some(),
        "every export must carry a host section"
    );
    strip_host(doc).render()
}

fn assert_thread_invariant(exe: &str, extra: &[&str], tag: &str) {
    let serial = run_export(exe, extra, 1, tag);
    let parallel = run_export(exe, extra, 4, tag);
    assert_eq!(
        serial, parallel,
        "{tag}: --threads 4 diverged from --threads 1 after stripping host"
    );
}

#[test]
fn e05_partitioning_is_thread_invariant() {
    assert_thread_invariant(env!("CARGO_BIN_EXE_e05_partitioning"), &[], "e05");
}

#[test]
fn e14_schedulers_is_thread_invariant() {
    assert_thread_invariant(env!("CARGO_BIN_EXE_e14_schedulers"), &[], "e14");
}

#[test]
fn e15_fault_recovery_smoke_is_thread_invariant() {
    assert_thread_invariant(
        env!("CARGO_BIN_EXE_e15_fault_recovery"),
        &["--smoke"],
        "e15",
    );
}

#[test]
fn e16_crash_restore_smoke_is_thread_invariant() {
    assert_thread_invariant(env!("CARGO_BIN_EXE_e16_crash_restore"), &["--smoke"], "e16");
}

#[test]
fn e17_overload_smoke_is_thread_invariant() {
    assert_thread_invariant(env!("CARGO_BIN_EXE_e17_overload"), &["--smoke"], "e17");
}

/// Run `bench_perf --smoke` at the given thread count and return the
/// written document, parsed.
fn run_bench_perf(threads: usize) -> Json {
    let path =
        std::env::temp_dir().join(format!("vfpga-perf-t{threads}-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let status = Command::new(env!("CARGO_BIN_EXE_bench_perf"))
        .args(["--smoke", "--threads", &threads.to_string(), "--out"])
        .arg(&path)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("bench_perf must spawn");
    assert!(status.success(), "bench_perf --threads {threads} failed");
    let text = std::fs::read_to_string(&path).expect("BENCH file must exist");
    let _ = std::fs::remove_file(&path);
    Json::parse(&text).expect("BENCH file must parse")
}

#[test]
fn bench_perf_sim_section_is_thread_invariant() {
    // The perf document's `sim` section (simulated latency histograms and
    // event-loop span counts, merged in point order) must be byte-identical
    // at any worker count; only the volatile `host` section may move.
    let a = run_bench_perf(1);
    let b = run_bench_perf(4);
    assert_eq!(
        a.get("schema"),
        Some(&Json::Str(bench::perf::PERF_SCHEMA.to_string()))
    );
    assert!(a.get("host").is_some(), "perf doc carries a host section");
    assert_eq!(
        strip_volatile(a).render(),
        strip_volatile(b).render(),
        "bench_perf --threads 4 diverged from --threads 1 after stripping host"
    );
}

#[test]
fn bench_perf_self_compare_reports_zero_regressions() {
    // `--compare A A` through the real binary: exit 0 and say so.
    let path = std::env::temp_dir().join(format!("vfpga-perf-self-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let status = Command::new(env!("CARGO_BIN_EXE_bench_perf"))
        .args(["--smoke", "--out"])
        .arg(&path)
        .stdout(std::process::Stdio::null())
        .status()
        .unwrap();
    assert!(status.success());
    let out = Command::new(env!("CARGO_BIN_EXE_bench_perf"))
        .arg("--compare")
        .arg(&path)
        .arg(&path)
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&path);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "self-compare must exit 0: {stdout}");
    assert!(
        stdout.contains("zero regressions"),
        "self-compare must report zero regressions: {stdout}"
    );
}

#[test]
fn jdiff_accepts_exports_differing_only_in_host() {
    // Two runs of the same experiment at different thread counts differ in
    // the host section (wall-clock) but nowhere else; jdiff must say so.
    let mk = |threads: usize| -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "vfpga-jdiff-t{threads}-{}.json",
            std::process::id()
        ));
        let status = Command::new(env!("CARGO_BIN_EXE_e05_partitioning"))
            .args(["--threads", &threads.to_string()])
            .arg("--json")
            .arg(&path)
            .stdout(std::process::Stdio::null())
            .status()
            .unwrap();
        assert!(status.success());
        path
    };
    let a = mk(1);
    let b = mk(2);
    let out = Command::new(env!("CARGO_BIN_EXE_jdiff"))
        .arg(&a)
        .arg(&b)
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
    assert!(
        out.status.success(),
        "jdiff should report identical-modulo-host: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
