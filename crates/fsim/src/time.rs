//! Simulated time.
//!
//! [`SimTime`] is an absolute instant measured in nanoseconds since the
//! start of the simulation; [`SimDuration`] is a difference between two
//! instants. Both are thin wrappers around `u64`, so arithmetic is cheap
//! and ordering is total. Nanosecond resolution is fine enough to express
//! single CLB propagation delays (~ns) while still covering ~584 years of
//! simulated time, far beyond any experiment horizon.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`. Saturates to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Convert to seconds as `f64` (for report output only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Convert to milliseconds as `f64` (for report output only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Build a span from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Build a span from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Build a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Build a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// The span in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds (for report output only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in fractional milliseconds (for report output only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in fractional microseconds (for report output only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// Multiply by an integer factor, saturating at `SimDuration::MAX`.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The ratio of two spans as `f64`; `rhs == 0` yields `f64::INFINITY`
    /// unless `self` is also zero, in which case the ratio is defined as 0.
    #[inline]
    pub fn ratio(self, rhs: SimDuration) -> f64 {
        if rhs.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / rhs.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    /// Human-friendly rendering with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5000));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic_is_saturating() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(t.as_nanos(), 1_000_000_000);
        assert_eq!(t - SimDuration::from_secs(2), SimTime::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
        assert_eq!((t - SimTime::ZERO), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_ratio_handles_zero() {
        let a = SimDuration::from_millis(10);
        assert_eq!(a.ratio(SimDuration::from_millis(20)), 0.5);
        assert_eq!(SimDuration::ZERO.ratio(SimDuration::ZERO), 0.0);
        assert_eq!(a.ratio(SimDuration::ZERO), f64::INFINITY);
    }

    #[test]
    fn display_selects_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime(5) < SimTime(6));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn mul_div_roundtrip() {
        let d = SimDuration::from_micros(7);
        assert_eq!(d * 3 / 3, d);
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
    }
}
