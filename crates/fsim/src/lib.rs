//! # fsim — deterministic discrete-event simulation kernel
//!
//! The VFPGA operating-system layer (crate `vfpga`) is evaluated on a
//! simulated host computer. This crate provides the substrate for that
//! simulation:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`EventQueue`] — a stable (FIFO-on-tie) pending-event set,
//! * [`rng`] — a small deterministic PRNG plus the distributions the
//!   workload generators need (uniform, exponential, Zipf, bounded Pareto),
//! * [`stats`] — streaming summary statistics and fixed-bin histograms,
//! * [`trace`] — typed, optionally ring-buffered event tracing,
//! * [`fault`] — seeded fault-injection plans (download corruption,
//!   configuration upsets, permanent column failures, host crashes),
//! * [`obs`] — a metrics registry and time-weighted utilization timelines,
//! * [`span`] — a hierarchical scoped-span wall-clock profiler whose
//!   per-thread buffers merge deterministically at join,
//! * [`json`] — the hand-rolled JSON value tree shared by checkpoint
//!   serialization (crate `vfpga`) and the bench exporter.
//!
//! Everything in this crate is deterministic: the same seed and the same
//! sequence of calls produce bit-identical results on every platform, which
//! is what makes the experiment tables in `EXPERIMENTS.md` reproducible.

pub mod event;
pub mod fault;
pub mod json;
pub mod obs;
pub mod rng;
pub mod span;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{EventQueue, ScheduledEvent};
pub use fault::{
    CrashInjector, CrashPlan, DeviceFaultInjector, DeviceFaultPlan, FaultInjector, FaultPlan,
    MigrationCrashWindow, MigrationInjector, MigrationPlan,
};
pub use obs::{Metrics, Timeline, TimelineSet};
pub use rng::SimRng;
pub use span::{SpanGuard, SpanProfile, SpanStat};
pub use stats::{HistSet, Histogram, LogHistogram, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{TaskState, Trace, TraceEntry, TraceEvent};
