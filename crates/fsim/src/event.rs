//! The pending-event set.
//!
//! [`EventQueue`] is a priority queue ordered by firing time, with a
//! monotonically increasing sequence number breaking ties so that events
//! scheduled earlier at the same instant fire first (FIFO tie-break). This
//! stability is load-bearing: the OS simulator schedules "preempt task" and
//! "start next task" at the same instant and relies on insertion order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled to fire at a given instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion sequence number; unique per queue, breaks ties FIFO.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic pending-event set.
///
/// Events are popped in nondecreasing time order; among events with equal
/// firing times, insertion order is preserved.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at `SimTime::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// An empty queue with heap space reserved for `capacity` pending
    /// events, so steady-state scheduling in the simulator's hot loop
    /// never reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the firing time of the most recently
    /// popped event (or zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past (`at < self.now()`): a
    /// causality violation always indicates a bug in the caller.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> u64 {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
        seq
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) -> u64 {
        let at = self.now + delay;
        self.schedule_at(at, event)
    }

    /// Pop the earliest pending event, advancing the clock to its firing
    /// time. Returns `None` when the queue is empty (the clock stays put).
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "heap returned an event in the past");
        self.now = ev.at;
        Some(ev)
    }

    /// Firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drop every pending event (the clock is unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E: Clone> EventQueue<E> {
    /// Snapshot the pending events in firing order *without* disturbing
    /// the queue — neither the clock nor the pending set changes. Used by
    /// checkpointing, which must serialize the pending set and then keep
    /// running; a destructive drain would advance `now` and turn later
    /// `schedule_at` calls into causality panics.
    pub fn pending_in_order(&self) -> Vec<ScheduledEvent<E>> {
        let mut copy = self.heap.clone();
        let mut out = Vec::with_capacity(copy.len());
        while let Some(ev) = copy.pop() {
            out.push(ev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(30));
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule_at(SimTime(42), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        let expect: Vec<u32> = (0..100).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), "first");
        q.pop();
        q.schedule_in(SimDuration::from_nanos(5), "second");
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime(105));
        assert_eq!(e.event, "second");
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        assert!(q.is_empty());
        q.schedule_at(SimTime(5), "a");
        q.schedule_at(SimTime(3), "b");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "a");
    }

    #[test]
    fn peek_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule_at(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|e| e.at), None);
    }

    #[test]
    fn pending_in_order_is_nondestructive_and_sorted() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(10), "b");
        let snap = q.pending_in_order();
        assert_eq!(
            snap.iter().map(|e| e.event).collect::<Vec<_>>(),
            vec!["a", "b", "c"],
            "sorted by time then FIFO"
        );
        assert_eq!(q.len(), 3, "queue untouched");
        assert_eq!(q.now(), SimTime::ZERO, "clock untouched");
        assert_eq!(q.pop().unwrap().event, "a");
    }

    #[test]
    fn interleaved_schedule_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), 1);
        q.schedule_at(SimTime(30), 3);
        assert_eq!(q.pop().unwrap().event, 1);
        q.schedule_at(SimTime(20), 2);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
    }
}
