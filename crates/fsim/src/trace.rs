//! Structured event tracing.
//!
//! The OS simulator emits a typed [`TraceEvent`] for every externally
//! observable action: task state changes, configuration downloads,
//! preemptions, garbage-collection runs, page faults, overlay swaps,
//! I/O-mux grants, and scheduler dispatches. Each event carries its
//! payload as typed fields, so tools (`trace_dump`, the JSON exporter)
//! can aggregate without parsing strings; the rendered message is derived
//! from the fields on demand.
//!
//! Integration tests assert on the trace; experiments usually run with the
//! trace disabled for speed. A [`Trace`] can also be capacity-bounded, in
//! which case it behaves as a ring buffer keeping the most recent events.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::fmt;

/// The lifecycle states a simulated task moves through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Task entered the system.
    Arrive,
    /// Task became runnable (circuit resident, waiting for dispatch).
    Ready,
    /// Task's circuit is active on the device.
    Run,
    /// Task blocked waiting for device resources.
    Block,
    /// Task finished all its operations.
    Done,
}

impl TaskState {
    /// Short tag for filtering, e.g. `"arrive"` or `"done"`.
    pub fn tag(self) -> &'static str {
        match self {
            TaskState::Arrive => "arrive",
            TaskState::Ready => "ready",
            TaskState::Run => "run",
            TaskState::Block => "block",
            TaskState::Done => "done",
        }
    }

    /// Counter name a metrics registry uses for this transition.
    pub fn counter_name(self) -> &'static str {
        match self {
            TaskState::Arrive => "tasks_arrived",
            TaskState::Ready => "tasks_ready",
            TaskState::Run => "task_runs",
            TaskState::Block => "task_blocks",
            TaskState::Done => "tasks_completed",
        }
    }
}

/// One typed, structured trace event.
///
/// Task identifiers are plain `u32`s here (the kernel does not know the OS
/// layer's newtypes); the emitting layer documents the mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A task changed lifecycle state.
    TaskState {
        /// Task identifier.
        task: u32,
        /// The state entered.
        state: TaskState,
        /// Free-form context, e.g. the task name or blocking reason.
        info: String,
    },
    /// The scheduler granted the device to a task.
    SchedulerDispatch {
        /// Task identifier.
        task: u32,
        /// Scheduler policy name.
        scheduler: &'static str,
        /// Ready-queue depth *after* removing the dispatched task.
        queue_depth: usize,
    },
    /// A (partial or full) configuration download to the device.
    ConfigDownload {
        /// Task the download served.
        task: u32,
        /// Frames written.
        frames: u32,
        /// Bytes shipped over the configuration port.
        bytes: u64,
        /// Simulated port time.
        duration: SimDuration,
        /// Whole-chip download (true) vs partial reconfiguration (false).
        full: bool,
    },
    /// A delta (frame-diff) download onto a column range whose previous
    /// occupant is still tracked in configuration RAM: only the changed
    /// frames ship, instead of the incoming circuit's full frame set.
    DeltaDownload {
        /// Task the download served.
        task: u32,
        /// Previous occupant of the column range (the delta base).
        from_circuit: u32,
        /// Circuit downloaded.
        to_circuit: u32,
        /// Changed frames actually written.
        frames: u32,
        /// Frames a full (non-delta) load of the circuit would write.
        full_frames: u32,
        /// Simulated port time.
        duration: SimDuration,
    },
    /// A tracked resident image (delta base) was invalidated; the next
    /// load onto the range pays a full download.
    DeltaInvalidate {
        /// First column of the dropped image.
        col0: u32,
        /// Columns it spanned.
        width: u32,
        /// Invalidation cause (`"repair"`, `"retire"`, `"relocate"`,
        /// `"gc"`, `"crash"`, `"overwrite"`, `"discard"`).
        reason: &'static str,
    },
    /// A delta checkpoint capture: only columns dirtied since the previous
    /// image were read back.
    DeltaCheckpoint {
        /// Checkpoint sequence number.
        seq: u64,
        /// Frames read back (the dirty columns).
        frames: u32,
        /// Frames a full capture would have read back.
        full_frames: u32,
        /// Delta captures since the last full image (chain length).
        chain: u32,
        /// Readback cost of the capture.
        duration: SimDuration,
    },
    /// A running task was preempted.
    Preemption {
        /// Task identifier.
        task: u32,
        /// Preemption policy name (`"wait"`, `"rollback"`, `"save-restore"`).
        policy: &'static str,
        /// State save/readback cost paid (zero for rollback/wait).
        saved: SimDuration,
        /// Computation discarded by rollback (zero otherwise).
        rolled_back: SimDuration,
    },
    /// A free-space garbage-collection (compaction) run.
    GcRun {
        /// Free fragments merged away.
        merged: u32,
        /// Resident circuits moved.
        relocations: u32,
        /// Relocation attempts that failed.
        failures: u32,
        /// Simulated cost of the run.
        duration: SimDuration,
    },
    /// A virtual-memory page fault (and the eviction it forced, if any).
    PageFault {
        /// The page (circuit segment) faulted in.
        page: u32,
        /// Replacement policy name (`"lru"`, `"fifo"`, …).
        policy: &'static str,
        /// The page evicted to make room, if the device was full.
        victim: Option<u32>,
        /// Configuration time charged for the fault.
        duration: SimDuration,
    },
    /// An overlay (time-multiplexed context) swap.
    OverlaySwap {
        /// Task identifier.
        task: u32,
        /// Context switched out.
        from_overlay: u32,
        /// Context switched in.
        to_overlay: u32,
        /// Swap cost.
        duration: SimDuration,
    },
    /// The I/O multiplexer granted pins to a task.
    IoMuxGrant {
        /// Task identifier.
        task: u32,
        /// Slot index granted.
        slot: u32,
        /// Pins in the slot.
        pins: u32,
    },
    /// A fault was injected into the device.
    FaultInjected {
        /// Fault class: `"download"`, `"seu"`, or `"column"`.
        kind: &'static str,
        /// Circuit whose configuration the fault struck, if any.
        circuit: Option<u32>,
        /// Fabric column struck, when the fault has a location.
        col: Option<u32>,
    },
    /// A CRC check caught corrupted configuration data.
    CrcMismatch {
        /// Circuit whose configuration failed the check.
        circuit: u32,
        /// Task affected, if the corruption was caught on its download.
        task: Option<u32>,
        /// Where the check ran: `"download"` or `"scrub"`.
        context: &'static str,
    },
    /// One periodic scrubbing pass (readback + CRC compare).
    ScrubPass {
        /// Configuration frames read back.
        frames: u32,
        /// Latent upsets detected this pass.
        found: u32,
        /// Readback port time charged.
        duration: SimDuration,
    },
    /// A corrupted download will be retried after a backoff.
    RetryScheduled {
        /// Task whose download failed.
        task: u32,
        /// Attempt number (1 = first retry).
        attempt: u32,
        /// Backoff delay before the retry.
        backoff: SimDuration,
    },
    /// A task was declared failed (recovery gave up on it).
    TaskFailed {
        /// Task identifier.
        task: u32,
        /// Why recovery gave up.
        reason: &'static str,
    },
    /// A fabric column was permanently retired.
    ColumnRetired {
        /// The failed column.
        col: u32,
        /// Resident circuits relocated off the column.
        relocations: u32,
        /// Relocation/eviction cost of the retirement.
        duration: SimDuration,
    },
    /// A detected upset was repaired (re-download, possibly state moves).
    Recovered {
        /// Circuit repaired.
        circuit: u32,
        /// Task whose in-flight work the repair adjusted, if any.
        task: Option<u32>,
        /// FPGA progress discarded by the recovery.
        lost: SimDuration,
        /// Repair cost (re-download + state traffic).
        duration: SimDuration,
    },
    /// A system checkpoint was captured.
    CheckpointTaken {
        /// Checkpoint sequence number (monotone within a run).
        seq: u64,
        /// Resident frames read back to capture device-visible state.
        frames: u32,
        /// Readback cost of the capture (background, like scrubbing).
        duration: SimDuration,
    },
    /// The host crashed: volatile OS state is gone, and any in-flight
    /// download was torn.
    Crash {
        /// Downloads whose WAL records were past the last checkpoint
        /// (committed after it, or torn by the crash itself).
        downloads_at_risk: u32,
        /// Whether a download was in flight (and therefore torn).
        torn: bool,
    },
    /// Journal replay after a restart: committed downloads redone, torn
    /// ones rolled back.
    JournalReplay {
        /// Committed records re-applied.
        redone: u32,
        /// Torn records rolled back.
        undone: u32,
        /// Port time the replay cost.
        duration: SimDuration,
    },
    /// A hang-detection watchdog was armed for a dispatched FPGA
    /// operation: the a-priori latency estimate times the slack factor.
    WatchdogArmed {
        /// Task identifier.
        task: u32,
        /// Delay from arming until the deadline expires.
        deadline: SimDuration,
    },
    /// A watchdog deadline expired: the operation overran its estimate
    /// and was forcibly preempted.
    WatchdogFired {
        /// Task identifier.
        task: u32,
        /// How many times this task has tripped the watchdog (1 = first).
        trip: u32,
        /// Operation progress discarded by the forced preemption.
        lost: SimDuration,
    },
    /// Admission control rejected a task outright (load shedding).
    TaskRejected {
        /// Task identifier.
        task: u32,
        /// Tenant whose quota and queue cap were both exhausted.
        tenant: u32,
    },
    /// A task was quarantined: removed from scheduling after repeated
    /// watchdog trips or exhausted fault recovery.
    TaskQuarantined {
        /// Task identifier.
        task: u32,
        /// Why the task was quarantined.
        reason: &'static str,
    },
    /// A saturated device sent an FPGA operation down the
    /// software-emulation path instead of queueing it.
    DegradedDispatch {
        /// Task identifier.
        task: u32,
        /// Circuit whose hardware run was emulated.
        circuit: u32,
        /// Software execution time charged in place of the FPGA run.
        duration: SimDuration,
    },
    /// The arrival-time schedulability test rejected a task: even the
    /// optimistic a-priori estimate already overshoots its deadline.
    TaskUnschedulable {
        /// Task identifier.
        task: u32,
        /// Tenant the task belongs to.
        tenant: u32,
        /// The a-priori completion estimate (service + pending
        /// reconfiguration + queued backlog, times the margin).
        estimate: SimDuration,
        /// The relative deadline the estimate overshot.
        deadline: SimDuration,
    },
    /// Device utilization crossed the degradation high mark: the system
    /// entered sticky degraded mode. Only emitted for explicit
    /// hysteresis pairs.
    DegradeModeEnter {
        /// Resident CLBs at the transition.
        used: u64,
        /// Total device CLBs.
        total: u64,
    },
    /// Device utilization fell below the degradation low mark: the
    /// system left degraded mode. Only emitted for explicit hysteresis
    /// pairs; enter/exit churn is the flapping the pair exists to kill.
    DegradeModeExit {
        /// Resident CLBs at the transition.
        used: u64,
        /// Total device CLBs.
        total: u64,
    },
    /// A physical device dropped off the shelf (power brownout, surprise
    /// removal): every resident configuration and flip-flop bit on it is
    /// lost. Emitted by the fleet harness, not a single-device run.
    DeviceCrash {
        /// The device that crashed.
        device: u32,
        /// How long it stays down before rejoining, blank.
        outage: SimDuration,
    },
    /// A crashed device's outage ended: it rejoined the fleet with empty
    /// configuration RAM.
    DeviceRejoin {
        /// The device that rejoined.
        device: u32,
    },
    /// A shard's tasks were failed over from a crashed device to a
    /// surviving one, restarting from the shard's last checkpoint.
    Failover {
        /// The crashed source device.
        from_device: u32,
        /// The surviving destination device.
        to_device: u32,
        /// Unfinished tasks carried over.
        tasks: u32,
        /// Work window lost to the crash (crash time minus the last
        /// checkpoint) that the destination must re-execute.
        redo: SimDuration,
    },
    /// No hardware destination had capacity within the retry budget: the
    /// shard fell back to the software (CPU-only) execution path.
    SoftwareFailover {
        /// The crashed source device.
        from_device: u32,
        /// Unfinished tasks degraded to software.
        tasks: u32,
    },
    /// Planned migration of a shard onto a rejoined device to even out
    /// hosting load.
    FleetRebalance {
        /// The migrated shard.
        shard: u32,
        /// The device it left.
        from_device: u32,
        /// The rejoined device it moved to.
        to_device: u32,
    },
    /// The failover retry budget expired with no destination and no
    /// software fallback: the shard's unfinished tasks were abandoned
    /// (counted in the disjoint lost-in-flight slice).
    FleetLost {
        /// The crashed device the tasks were resident on.
        device: u32,
        /// Tasks lost in flight.
        tasks: u32,
    },
    /// Live-migration *prepare*: a destination region was reserved and
    /// the tenant's resident image + FF state snapshotted; a
    /// `MigrationIntent` record is journaled on both sides.
    MigrationPrepare {
        /// The migrating tenant.
        tenant: u32,
        /// Source device.
        from_device: u32,
        /// Destination device.
        to_device: u32,
        /// Live (unfinished) tasks the tenant carries across.
        tasks: u32,
    },
    /// Live-migration *commit*: the destination owns the tenant, the
    /// placement table flipped, and a `MigrationCommit` was journaled.
    MigrationCommit {
        /// The migrated tenant.
        tenant: u32,
        /// Source device.
        from_device: u32,
        /// Destination device.
        to_device: u32,
        /// Post-checkpoint work window the destination re-executes.
        redo: SimDuration,
    },
    /// Live-migration *abort*: a crash window (or missing destination)
    /// rolled the tenant back onto the source with its backlog intact.
    MigrationAbort {
        /// The tenant that stayed put.
        tenant: u32,
        /// Source device.
        from_device: u32,
        /// Destination device the attempt targeted (`u32::MAX` when the
        /// attempt died before choosing one).
        to_device: u32,
        /// Why the migration rolled back.
        reason: &'static str,
    },
    /// Source columns of a committed migration were freed — either in the
    /// normal commit path or idempotently redone by journal replay after
    /// a crash between commit and free.
    MigrationFreed {
        /// The migrated tenant.
        tenant: u32,
        /// The source device whose columns were freed.
        device: u32,
        /// Residency claims discarded.
        claims: u32,
        /// True when journal replay redid the free after a crash.
        redone: bool,
    },
    /// Escape hatch for one-off annotations.
    Custom {
        /// Category tag.
        tag: &'static str,
        /// Free-form details.
        message: String,
    },
}

impl TraceEvent {
    /// The event's category tag, used by [`Trace::with_tag`] and
    /// `trace_dump` filtering. Task-state events use the state name
    /// (`"arrive"`, `"block"`, `"done"`, …) so lifecycle assertions can
    /// filter directly on the transition.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::TaskState { state, .. } => state.tag(),
            TraceEvent::SchedulerDispatch { .. } => "dispatch",
            TraceEvent::ConfigDownload { .. } => "config",
            TraceEvent::DeltaDownload { .. } => "delta",
            TraceEvent::DeltaInvalidate { .. } => "delta-inv",
            TraceEvent::DeltaCheckpoint { .. } => "ckpt-delta",
            TraceEvent::Preemption { .. } => "preempt",
            TraceEvent::GcRun { .. } => "gc",
            TraceEvent::PageFault { .. } => "fault",
            TraceEvent::OverlaySwap { .. } => "overlay",
            TraceEvent::IoMuxGrant { .. } => "iomux",
            TraceEvent::FaultInjected { .. } => "fault-inj",
            TraceEvent::CrcMismatch { .. } => "crc",
            TraceEvent::ScrubPass { .. } => "scrub",
            TraceEvent::RetryScheduled { .. } => "retry",
            TraceEvent::TaskFailed { .. } => "task-fail",
            TraceEvent::ColumnRetired { .. } => "col-retire",
            TraceEvent::Recovered { .. } => "recover",
            TraceEvent::CheckpointTaken { .. } => "ckpt",
            TraceEvent::Crash { .. } => "crash",
            TraceEvent::JournalReplay { .. } => "replay",
            TraceEvent::WatchdogArmed { .. } => "wd-arm",
            TraceEvent::WatchdogFired { .. } => "wd-fire",
            TraceEvent::TaskRejected { .. } => "reject",
            TraceEvent::TaskQuarantined { .. } => "quarantine",
            TraceEvent::DegradedDispatch { .. } => "degrade",
            TraceEvent::TaskUnschedulable { .. } => "unsched",
            TraceEvent::DegradeModeEnter { .. } => "degrade-on",
            TraceEvent::DegradeModeExit { .. } => "degrade-off",
            TraceEvent::DeviceCrash { .. } => "dev-crash",
            TraceEvent::DeviceRejoin { .. } => "dev-rejoin",
            TraceEvent::Failover { .. } => "failover",
            TraceEvent::SoftwareFailover { .. } => "sw-failover",
            TraceEvent::FleetRebalance { .. } => "rebalance",
            TraceEvent::FleetLost { .. } => "lost",
            TraceEvent::MigrationPrepare { .. } => "mig-prepare",
            TraceEvent::MigrationCommit { .. } => "mig-commit",
            TraceEvent::MigrationAbort { .. } => "mig-abort",
            TraceEvent::MigrationFreed { .. } => "mig-freed",
            TraceEvent::Custom { tag, .. } => tag,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::TaskState { task, state, info } => {
                write!(f, "task {task} -> {}", state.tag())?;
                if !info.is_empty() {
                    write!(f, " ({info})")?;
                }
                Ok(())
            }
            TraceEvent::SchedulerDispatch {
                task,
                scheduler,
                queue_depth,
            } => {
                write!(
                    f,
                    "dispatch task {task} via {scheduler}, {queue_depth} still queued"
                )
            }
            TraceEvent::ConfigDownload {
                task,
                frames,
                bytes,
                duration,
                full,
            } => write!(
                f,
                "{} download for task {task}: {frames} frames, {bytes} B, {:.3} ms",
                if *full { "full" } else { "partial" },
                duration.as_millis_f64()
            ),
            TraceEvent::DeltaDownload {
                task,
                from_circuit,
                to_circuit,
                frames,
                full_frames,
                duration,
            } => write!(
                f,
                "delta download for task {task}: circuit {from_circuit} -> {to_circuit}, \
                 {frames}/{full_frames} frames, {:.3} ms",
                duration.as_millis_f64()
            ),
            TraceEvent::DeltaInvalidate {
                col0,
                width,
                reason,
            } => write!(
                f,
                "delta base invalidated [{reason}]: cols [{col0}, {})",
                col0 + width
            ),
            TraceEvent::DeltaCheckpoint {
                seq,
                frames,
                full_frames,
                chain,
                duration,
            } => write!(
                f,
                "delta checkpoint #{seq}: {frames}/{full_frames} frames, chain {chain}, {:.3} ms",
                duration.as_millis_f64()
            ),
            TraceEvent::Preemption {
                task,
                policy,
                saved,
                rolled_back,
            } => write!(
                f,
                "preempt task {task} [{policy}]: saved {:.3} ms, rolled back {:.3} ms",
                saved.as_millis_f64(),
                rolled_back.as_millis_f64()
            ),
            TraceEvent::GcRun {
                merged,
                relocations,
                failures,
                duration,
            } => write!(
                f,
                "gc: merged {merged} fragments, {relocations} relocations \
                 ({failures} failed), {:.3} ms",
                duration.as_millis_f64()
            ),
            TraceEvent::PageFault {
                page,
                policy,
                victim,
                duration,
            } => {
                write!(f, "fault page {page} [{policy}]")?;
                if let Some(v) = victim {
                    write!(f, ", evict page {v}")?;
                }
                write!(f, ", {:.3} ms", duration.as_millis_f64())
            }
            TraceEvent::OverlaySwap {
                task,
                from_overlay,
                to_overlay,
                duration,
            } => write!(
                f,
                "overlay swap task {task}: {from_overlay} -> {to_overlay}, {:.3} ms",
                duration.as_millis_f64()
            ),
            TraceEvent::IoMuxGrant { task, slot, pins } => {
                write!(f, "iomux grant slot {slot} ({pins} pins) to task {task}")
            }
            TraceEvent::FaultInjected { kind, circuit, col } => {
                write!(f, "inject {kind} fault")?;
                if let Some(c) = col {
                    write!(f, " at col {c}")?;
                }
                match circuit {
                    Some(cid) => write!(f, " hitting circuit {cid}"),
                    None => write!(f, " (benign: no circuit hit)"),
                }
            }
            TraceEvent::CrcMismatch {
                circuit,
                task,
                context,
            } => {
                write!(f, "crc mismatch on circuit {circuit} [{context}]")?;
                if let Some(t) = task {
                    write!(f, " for task {t}")?;
                }
                Ok(())
            }
            TraceEvent::ScrubPass {
                frames,
                found,
                duration,
            } => write!(
                f,
                "scrub {frames} frames, {found} upsets found, {:.3} ms",
                duration.as_millis_f64()
            ),
            TraceEvent::RetryScheduled {
                task,
                attempt,
                backoff,
            } => write!(
                f,
                "retry #{attempt} for task {task} after {:.3} ms backoff",
                backoff.as_millis_f64()
            ),
            TraceEvent::TaskFailed { task, reason } => {
                write!(f, "task {task} failed: {reason}")
            }
            TraceEvent::ColumnRetired {
                col,
                relocations,
                duration,
            } => write!(
                f,
                "retire col {col}: {relocations} relocations, {:.3} ms",
                duration.as_millis_f64()
            ),
            TraceEvent::Recovered {
                circuit,
                task,
                lost,
                duration,
            } => {
                write!(f, "recovered circuit {circuit}")?;
                if let Some(t) = task {
                    write!(f, " (task {t})")?;
                }
                write!(
                    f,
                    ": lost {:.3} ms, repair {:.3} ms",
                    lost.as_millis_f64(),
                    duration.as_millis_f64()
                )
            }
            TraceEvent::CheckpointTaken {
                seq,
                frames,
                duration,
            } => write!(
                f,
                "checkpoint #{seq}: {frames} frames read back, {:.3} ms",
                duration.as_millis_f64()
            ),
            TraceEvent::Crash {
                downloads_at_risk,
                torn,
            } => write!(
                f,
                "host crash: {downloads_at_risk} downloads past last checkpoint{}",
                if *torn { ", one torn mid-flight" } else { "" }
            ),
            TraceEvent::JournalReplay {
                redone,
                undone,
                duration,
            } => write!(
                f,
                "journal replay: {redone} redone, {undone} undone, {:.3} ms",
                duration.as_millis_f64()
            ),
            TraceEvent::WatchdogArmed { task, deadline } => write!(
                f,
                "watchdog armed for task {task}: fires in {:.3} ms",
                deadline.as_millis_f64()
            ),
            TraceEvent::WatchdogFired { task, trip, lost } => write!(
                f,
                "watchdog fired for task {task} (trip #{trip}): lost {:.3} ms",
                lost.as_millis_f64()
            ),
            TraceEvent::TaskRejected { task, tenant } => {
                write!(f, "reject task {task}: tenant {tenant} over quota")
            }
            TraceEvent::TaskQuarantined { task, reason } => {
                write!(f, "quarantine task {task}: {reason}")
            }
            TraceEvent::DegradedDispatch {
                task,
                circuit,
                duration,
            } => write!(
                f,
                "degraded dispatch task {task}: circuit {circuit} emulated in \
                 software, {:.3} ms",
                duration.as_millis_f64()
            ),
            TraceEvent::TaskUnschedulable {
                task,
                tenant,
                estimate,
                deadline,
            } => write!(
                f,
                "unschedulable task {task}: tenant {tenant}, estimate {:.3} ms \
                 exceeds deadline {:.3} ms",
                estimate.as_millis_f64(),
                deadline.as_millis_f64()
            ),
            TraceEvent::DegradeModeEnter { used, total } => write!(
                f,
                "degraded mode entered: {used}/{total} CLBs past the high mark"
            ),
            TraceEvent::DegradeModeExit { used, total } => write!(
                f,
                "degraded mode left: {used}/{total} CLBs below the low mark"
            ),
            TraceEvent::DeviceCrash { device, outage } => write!(
                f,
                "device {device} crashed: configuration lost, down for {:.3} ms",
                outage.as_millis_f64()
            ),
            TraceEvent::DeviceRejoin { device } => {
                write!(f, "device {device} rejoined the fleet, blank")
            }
            TraceEvent::Failover {
                from_device,
                to_device,
                tasks,
                redo,
            } => write!(
                f,
                "failover dev {from_device} -> dev {to_device}: {tasks} tasks, \
                 redo window {:.3} ms",
                redo.as_millis_f64()
            ),
            TraceEvent::SoftwareFailover { from_device, tasks } => write!(
                f,
                "device {from_device} down, no destination: {tasks} tasks \
                 degraded to the software path"
            ),
            TraceEvent::FleetRebalance {
                shard,
                from_device,
                to_device,
            } => write!(
                f,
                "shard {shard} rebalanced dev {from_device} -> dev {to_device}"
            ),
            TraceEvent::FleetLost { device, tasks } => write!(
                f,
                "device {device} down, no destination: {tasks} tasks lost in flight"
            ),
            TraceEvent::MigrationPrepare {
                tenant,
                from_device,
                to_device,
                tasks,
            } => write!(
                f,
                "migration prepare tenant {tenant} dev {from_device} -> dev {to_device}: \
                 {tasks} live tasks, intent journaled on both sides"
            ),
            TraceEvent::MigrationCommit {
                tenant,
                from_device,
                to_device,
                redo,
            } => write!(
                f,
                "migration commit tenant {tenant} dev {from_device} -> dev {to_device}: \
                 redo window {:.3} ms",
                redo.as_millis_f64()
            ),
            TraceEvent::MigrationAbort {
                tenant,
                from_device,
                to_device,
                reason,
            } => {
                if *to_device == u32::MAX {
                    write!(
                        f,
                        "migration abort tenant {tenant} on dev {from_device}: {reason}"
                    )
                } else {
                    write!(
                        f,
                        "migration abort tenant {tenant} dev {from_device} -> dev {to_device}: \
                         {reason}"
                    )
                }
            }
            TraceEvent::MigrationFreed {
                tenant,
                device,
                claims,
                redone,
            } => write!(
                f,
                "migration freed tenant {tenant} source dev {device}: {claims} claims{}",
                if *redone {
                    " (redone by journal replay)"
                } else {
                    ""
                }
            ),
            TraceEvent::Custom { message, .. } => f.write_str(message),
        }
    }
}

/// One trace record: a timestamped typed event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When the action happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

impl TraceEntry {
    /// The event's category tag.
    pub fn tag(&self) -> &'static str {
        self.event.tag()
    }

    /// Rendered human-readable details (derived from the typed fields).
    pub fn message(&self) -> String {
        self.event.to_string()
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>14}] {:<8} {}",
            self.at.to_string(),
            self.tag(),
            self.event
        )
    }
}

/// An event buffer that can be globally enabled or disabled, and
/// optionally capacity-bounded.
///
/// When disabled (the default for benchmark runs), [`Trace::record`] and
/// [`Trace::emit`] are no-ops, so tracing costs one branch.
///
/// With a capacity set ([`Trace::enabled_with_capacity`]) the buffer is a
/// ring: once full, recording a new event silently discards the *oldest*
/// retained event and increments [`Trace::dropped`]. Consequently:
///
/// * [`Trace::len`] is the number of events currently *retained*
///   (at most the capacity), **not** the number ever recorded — use
///   [`Trace::total_recorded`] for that;
/// * [`Trace::entries`] yields only the retained suffix of the stream, in
///   emission order.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    capacity: Option<usize>,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled, unbounded trace.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            ..Trace::default()
        }
    }

    /// An enabled trace retaining at most `capacity` events (ring buffer,
    /// oldest dropped first). `capacity` must be nonzero.
    pub fn enabled_with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be nonzero");
        Trace {
            enabled: true,
            capacity: Some(capacity),
            entries: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Whether entries are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The retention bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Record a typed event if enabled.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.capacity {
            if self.entries.len() == cap {
                self.entries.pop_front();
                self.dropped += 1;
            }
        }
        self.entries.push_back(TraceEntry { at, event });
    }

    /// Record a [`TraceEvent::Custom`] entry if enabled. The message
    /// closure is only evaluated when the trace is on.
    pub fn emit(&mut self, at: SimTime, tag: &'static str, message: impl FnOnce() -> String) {
        if self.enabled {
            self.record(
                at,
                TraceEvent::Custom {
                    tag,
                    message: message(),
                },
            );
        }
    }

    /// Retained entries in emission order. With a capacity set this is the
    /// most recent suffix of the event stream; earlier events have been
    /// dropped (see [`Trace::dropped`]).
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries.iter()
    }

    /// Retained entries with the given tag, in emission order.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.tag() == tag)
    }

    /// Number of *retained* entries (bounded by the capacity, if set).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Events discarded by the ring buffer since the last [`Trace::clear`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + dropped) since the last
    /// [`Trace::clear`].
    pub fn total_recorded(&self) -> u64 {
        self.entries.len() as u64 + self.dropped
    }

    /// Drop all retained entries and reset the dropped counter.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_skips_closure() {
        let mut t = Trace::disabled();
        let mut evaluated = false;
        t.emit(SimTime(1), "x", || {
            evaluated = true;
            "boom".into()
        });
        assert!(!evaluated, "message closure must not run when disabled");
        t.record(
            SimTime(2),
            TraceEvent::TaskState {
                task: 0,
                state: TaskState::Arrive,
                info: String::new(),
            },
        );
        assert!(t.is_empty());
        assert_eq!(t.total_recorded(), 0);
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.emit(SimTime(1), "a", || "first".into());
        t.record(
            SimTime(2),
            TraceEvent::TaskState {
                task: 7,
                state: TaskState::Done,
                info: "t7".into(),
            },
        );
        assert_eq!(t.len(), 2);
        let entries: Vec<_> = t.entries().collect();
        assert_eq!(entries[0].message(), "first");
        assert_eq!(entries[1].at, SimTime(2));
        assert_eq!(entries[1].tag(), "done");
    }

    #[test]
    fn tag_filter_spans_typed_and_custom() {
        let mut t = Trace::enabled();
        t.emit(SimTime(1), "sched", || "s1".into());
        t.record(
            SimTime(2),
            TraceEvent::ConfigDownload {
                task: 1,
                frames: 4,
                bytes: 512,
                duration: SimDuration::from_micros(30),
                full: false,
            },
        );
        t.emit(SimTime(3), "sched", || "s2".into());
        let scheds: Vec<_> = t.with_tag("sched").map(|e| e.message()).collect();
        assert_eq!(scheds, vec!["s1", "s2"]);
        assert_eq!(t.with_tag("config").count(), 1);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut t = Trace::enabled_with_capacity(3);
        for i in 0..5u64 {
            t.emit(SimTime(i), "x", || format!("m{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.total_recorded(), 5);
        let kept: Vec<_> = t.entries().map(|e| e.at.0).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest entries must go first");
        t.clear();
        assert_eq!(t.dropped(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn display_contains_fields() {
        let e = TraceEntry {
            at: SimTime(1_500_000),
            event: TraceEvent::GcRun {
                merged: 2,
                relocations: 1,
                failures: 0,
                duration: SimDuration::from_micros(250),
            },
        };
        let s = e.to_string();
        assert!(s.contains("gc"));
        assert!(s.contains("merged 2 fragments"));

        let f = TraceEvent::PageFault {
            page: 3,
            policy: "lru",
            victim: Some(1),
            duration: SimDuration::from_micros(10),
        };
        let fs = f.to_string();
        assert!(fs.contains("fault page 3"));
        assert!(fs.contains("evict page 1"));
        assert_eq!(f.tag(), "fault");
    }

    #[test]
    fn fault_event_tags_and_display() {
        let cases: Vec<(TraceEvent, &str, &str)> = vec![
            (
                TraceEvent::FaultInjected {
                    kind: "seu",
                    circuit: Some(2),
                    col: Some(7),
                },
                "fault-inj",
                "inject seu fault at col 7 hitting circuit 2",
            ),
            (
                TraceEvent::CrcMismatch {
                    circuit: 3,
                    task: Some(1),
                    context: "download",
                },
                "crc",
                "crc mismatch on circuit 3 [download] for task 1",
            ),
            (
                TraceEvent::ScrubPass {
                    frames: 12,
                    found: 1,
                    duration: SimDuration::from_micros(80),
                },
                "scrub",
                "scrub 12 frames, 1 upsets found",
            ),
            (
                TraceEvent::RetryScheduled {
                    task: 4,
                    attempt: 2,
                    backoff: SimDuration::from_millis(1),
                },
                "retry",
                "retry #2 for task 4",
            ),
            (
                TraceEvent::TaskFailed {
                    task: 5,
                    reason: "download retries exhausted",
                },
                "task-fail",
                "task 5 failed: download retries exhausted",
            ),
            (
                TraceEvent::ColumnRetired {
                    col: 9,
                    relocations: 1,
                    duration: SimDuration::from_micros(40),
                },
                "col-retire",
                "retire col 9: 1 relocations",
            ),
            (
                TraceEvent::Recovered {
                    circuit: 6,
                    task: None,
                    lost: SimDuration::ZERO,
                    duration: SimDuration::from_micros(25),
                },
                "recover",
                "recovered circuit 6",
            ),
        ];
        for (ev, tag, fragment) in cases {
            assert_eq!(ev.tag(), tag);
            let s = ev.to_string();
            assert!(s.contains(fragment), "{s:?} missing {fragment:?}");
        }
    }

    #[test]
    fn admission_event_tags_and_display() {
        let cases: Vec<(TraceEvent, &str, &str)> = vec![
            (
                TraceEvent::WatchdogArmed {
                    task: 1,
                    deadline: SimDuration::from_millis(3),
                },
                "wd-arm",
                "watchdog armed for task 1",
            ),
            (
                TraceEvent::WatchdogFired {
                    task: 1,
                    trip: 2,
                    lost: SimDuration::from_millis(6),
                },
                "wd-fire",
                "watchdog fired for task 1 (trip #2)",
            ),
            (
                TraceEvent::TaskRejected { task: 4, tenant: 2 },
                "reject",
                "reject task 4: tenant 2 over quota",
            ),
            (
                TraceEvent::TaskQuarantined {
                    task: 3,
                    reason: "watchdog trips exhausted",
                },
                "quarantine",
                "quarantine task 3: watchdog trips exhausted",
            ),
            (
                TraceEvent::DegradedDispatch {
                    task: 5,
                    circuit: 7,
                    duration: SimDuration::from_micros(900),
                },
                "degrade",
                "degraded dispatch task 5: circuit 7 emulated in software",
            ),
            (
                TraceEvent::TaskUnschedulable {
                    task: 6,
                    tenant: 1,
                    estimate: SimDuration::from_millis(80),
                    deadline: SimDuration::from_millis(20),
                },
                "unsched",
                "unschedulable task 6: tenant 1",
            ),
            (
                TraceEvent::DegradeModeEnter {
                    used: 180,
                    total: 200,
                },
                "degrade-on",
                "degraded mode entered: 180/200 CLBs",
            ),
            (
                TraceEvent::DegradeModeExit {
                    used: 60,
                    total: 200,
                },
                "degrade-off",
                "degraded mode left: 60/200 CLBs",
            ),
            (
                TraceEvent::DeviceCrash {
                    device: 2,
                    outage: SimDuration::from_millis(4),
                },
                "dev-crash",
                "device 2 crashed",
            ),
            (
                TraceEvent::DeviceRejoin { device: 2 },
                "dev-rejoin",
                "device 2 rejoined",
            ),
            (
                TraceEvent::Failover {
                    from_device: 2,
                    to_device: 0,
                    tasks: 5,
                    redo: SimDuration::from_millis(1),
                },
                "failover",
                "failover dev 2 -> dev 0: 5 tasks",
            ),
            (
                TraceEvent::SoftwareFailover {
                    from_device: 1,
                    tasks: 3,
                },
                "sw-failover",
                "degraded to the software path",
            ),
            (
                TraceEvent::FleetRebalance {
                    shard: 1,
                    from_device: 0,
                    to_device: 2,
                },
                "rebalance",
                "shard 1 rebalanced dev 0 -> dev 2",
            ),
            (
                TraceEvent::FleetLost {
                    device: 3,
                    tasks: 2,
                },
                "lost",
                "2 tasks lost in flight",
            ),
        ];
        for (ev, tag, fragment) in cases {
            assert_eq!(ev.tag(), tag);
            let s = ev.to_string();
            assert!(s.contains(fragment), "{s:?} missing {fragment:?}");
        }
    }

    #[test]
    fn task_state_tags_match_lifecycle_names() {
        for (state, tag) in [
            (TaskState::Arrive, "arrive"),
            (TaskState::Ready, "ready"),
            (TaskState::Run, "run"),
            (TaskState::Block, "block"),
            (TaskState::Done, "done"),
        ] {
            let ev = TraceEvent::TaskState {
                task: 0,
                state,
                info: String::new(),
            };
            assert_eq!(ev.tag(), tag);
        }
    }

    #[test]
    fn delta_event_tags_and_display() {
        let cases: Vec<(TraceEvent, &str, &str)> = vec![
            (
                TraceEvent::DeltaDownload {
                    task: 3,
                    from_circuit: 1,
                    to_circuit: 2,
                    frames: 2,
                    full_frames: 6,
                    duration: SimDuration::from_micros(40),
                },
                "delta",
                "delta download for task 3: circuit 1 -> 2, 2/6 frames",
            ),
            (
                TraceEvent::DeltaInvalidate {
                    col0: 4,
                    width: 3,
                    reason: "retire",
                },
                "delta-inv",
                "delta base invalidated [retire]: cols [4, 7)",
            ),
            (
                TraceEvent::DeltaCheckpoint {
                    seq: 5,
                    frames: 3,
                    full_frames: 9,
                    chain: 2,
                    duration: SimDuration::from_micros(10),
                },
                "ckpt-delta",
                "delta checkpoint #5: 3/9 frames, chain 2",
            ),
        ];
        for (ev, tag, fragment) in cases {
            assert_eq!(ev.tag(), tag);
            let s = ev.to_string();
            assert!(s.contains(fragment), "{s:?} missing {fragment:?}");
        }
    }
}
