//! Lightweight event tracing.
//!
//! The OS simulator emits a [`TraceEntry`] for every externally observable
//! action (task state change, configuration download, preemption, …).
//! Integration tests assert on the trace; experiments usually run with the
//! trace disabled for speed.

use crate::time::SimTime;
use std::fmt;

/// One trace record: a timestamped, categorized message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the action happened.
    pub at: SimTime,
    /// Category tag, e.g. `"sched"`, `"config"`, `"gc"`.
    pub tag: &'static str,
    /// Human-readable details.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>14}] {:<8} {}", self.at.to_string(), self.tag, self.message)
    }
}

/// An append-only trace buffer that can be globally enabled or disabled.
///
/// When disabled (the default for benchmark runs), [`Trace::emit`] is a
/// no-op so tracing costs one branch.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            entries: Vec::new(),
        }
    }

    /// An enabled trace.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            entries: Vec::new(),
        }
    }

    /// Whether entries are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an entry if enabled. The message closure is only evaluated
    /// when the trace is on.
    pub fn emit(&mut self, at: SimTime, tag: &'static str, message: impl FnOnce() -> String) {
        if self.enabled {
            self.entries.push(TraceEntry {
                at,
                tag,
                message: message(),
            });
        }
    }

    /// All recorded entries in emission order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries with the given tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.tag == tag)
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all recorded entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_skips_closure() {
        let mut t = Trace::disabled();
        let mut evaluated = false;
        t.emit(SimTime(1), "x", || {
            evaluated = true;
            "boom".into()
        });
        assert!(!evaluated, "message closure must not run when disabled");
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.emit(SimTime(1), "a", || "first".into());
        t.emit(SimTime(2), "b", || "second".into());
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].message, "first");
        assert_eq!(t.entries()[1].at, SimTime(2));
    }

    #[test]
    fn tag_filter() {
        let mut t = Trace::enabled();
        t.emit(SimTime(1), "sched", || "s1".into());
        t.emit(SimTime(2), "config", || "c1".into());
        t.emit(SimTime(3), "sched", || "s2".into());
        let scheds: Vec<_> = t.with_tag("sched").map(|e| e.message.as_str()).collect();
        assert_eq!(scheds, vec!["s1", "s2"]);
    }

    #[test]
    fn display_contains_fields() {
        let e = TraceEntry {
            at: SimTime(1_500_000),
            tag: "gc",
            message: "merged 2 partitions".into(),
        };
        let s = e.to_string();
        assert!(s.contains("gc"));
        assert!(s.contains("merged 2 partitions"));
    }

    #[test]
    fn clear_empties() {
        let mut t = Trace::enabled();
        t.emit(SimTime(1), "a", || "x".into());
        t.clear();
        assert!(t.is_empty());
    }
}
