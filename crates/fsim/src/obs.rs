//! Observability primitives: a metrics registry and time-weighted
//! timelines.
//!
//! [`Metrics`] is a small named registry of counters, gauges, and value
//! distributions (backed by [`Summary`]/[`Histogram`] from [`crate::stats`]).
//! [`Timeline`] records a step function of some quantity against
//! [`SimTime`] — CLB occupancy, free-fragment count, ready-queue depth —
//! storing only value *changes* so long steady states cost one point.
//!
//! Both containers iterate in deterministic (sorted-by-name) order so that
//! exported reports are byte-stable across runs.

use crate::stats::{Histogram, Summary};
use crate::time::SimTime;
use std::collections::BTreeMap;

/// A named registry of counters, gauges, and distributions.
///
/// Names are `&'static str` by design: metric names are part of the code,
/// not data, and static names keep recording allocation-free.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    summaries: BTreeMap<&'static str, Summary>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `by` to the named counter (created at zero on first use).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Read a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Read a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record `value` into the named streaming summary.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.summaries.entry(name).or_default().add(value);
    }

    /// Read a summary, if any values were observed.
    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.summaries.get(name)
    }

    /// Record `value` into the named histogram, creating it with the given
    /// shape on first use. The shape arguments are ignored on later calls —
    /// a histogram's bins are fixed at creation.
    pub fn observe_hist(&mut self, name: &'static str, lo: f64, hi: f64, bins: usize, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(lo, hi, bins))
            .add(value);
    }

    /// Read a histogram, if any values were observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All summaries in name order.
    pub fn summaries(&self) -> impl Iterator<Item = (&'static str, &Summary)> + '_ {
        self.summaries.iter().map(|(&k, v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.summaries.is_empty()
            && self.histograms.is_empty()
    }

    /// Fold another registry into this one: counters add, gauges take the
    /// other's value, summaries and histograms merge.
    pub fn absorb(&mut self, other: &Metrics) {
        for (k, v) in other.counters() {
            self.inc(k, v);
        }
        for (k, v) in other.gauges() {
            self.set_gauge(k, v);
        }
        for (k, s) in other.summaries() {
            self.summaries.entry(k).or_default().merge(s);
        }
        for (k, h) in other.histograms() {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k, h.clone());
                }
            }
        }
    }
}

/// A step function of a quantity over simulated time, stored as value
/// changes.
///
/// Sampling the same value twice in a row is free (deduplicated); sampling
/// at the same instant overwrites the previous point at that instant, so
/// a burst of changes within one event collapses to its final value.
/// Timestamps must be nondecreasing.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Timeline {
    points: Vec<(SimTime, f64)>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Record the quantity's value at `at`.
    ///
    /// # Panics
    /// If `at` precedes the last recorded timestamp.
    pub fn sample(&mut self, at: SimTime, value: f64) {
        if let Some(&mut (last_at, ref mut last_v)) = self.points.last_mut() {
            assert!(at >= last_at, "timeline samples must be time-ordered");
            if at == last_at {
                *last_v = value;
                self.dedup_tail();
                return;
            }
            if *last_v == value {
                return; // step function: value unchanged, no new point
            }
        }
        self.points.push((at, value));
    }

    /// After overwriting the tail in place, drop it if it now repeats the
    /// previous value.
    fn dedup_tail(&mut self) {
        if self.points.len() >= 2 {
            let n = self.points.len();
            if self.points[n - 1].1 == self.points[n - 2].1 {
                self.points.pop();
            }
        }
    }

    /// The recorded change points, time-ordered.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of change points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value in effect at `t` (the last change at or before `t`), or
    /// `None` if `t` precedes the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.partition_point(|&(at, _)| at <= t) {
            0 => None,
            i => Some(self.points[i - 1].1),
        }
    }

    /// Largest sampled value (or 0.0 if empty).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Mean of the step function over `[first_sample, until]`, weighting
    /// each value by how long it was in effect. Returns 0.0 for an empty
    /// timeline; if `until` is before the last change point the tail is
    /// clamped out.
    pub fn time_weighted_mean(&self, until: SimTime) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let t0 = self.points[0].0;
        if until <= t0 {
            return self.points[0].1;
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for w in self.points.windows(2) {
            let (a, va) = w[0];
            let (b, _) = w[1];
            let hi = b.min(until);
            if hi > a {
                let span = hi.since(a).as_nanos() as f64;
                weighted += va * span;
                total += span;
            }
        }
        let (last_at, last_v) = *self.points.last().unwrap();
        if until > last_at {
            let span = until.since(last_at).as_nanos() as f64;
            weighted += last_v * span;
            total += span;
        }
        if total == 0.0 {
            self.points[0].1
        } else {
            weighted / total
        }
    }
}

/// A named collection of [`Timeline`]s, iterated in name order.
#[derive(Debug, Default, Clone)]
pub struct TimelineSet {
    series: BTreeMap<&'static str, Timeline>,
}

impl TimelineSet {
    /// An empty set.
    pub fn new() -> Self {
        TimelineSet::default()
    }

    /// Sample the named series (created empty on first use).
    pub fn sample(&mut self, name: &'static str, at: SimTime, value: f64) {
        self.series.entry(name).or_default().sample(at, value);
    }

    /// Look up a series by name.
    pub fn get(&self, name: &str) -> Option<&Timeline> {
        self.series.get(name)
    }

    /// All series in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Timeline)> + '_ {
        self.series.iter().map(|(&k, v)| (k, v))
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series exist.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_zero() {
        let mut m = Metrics::new();
        m.inc("downloads", 2);
        m.inc("downloads", 3);
        assert_eq!(m.counter("downloads"), 5);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut m = Metrics::new();
        m.set_gauge("occupancy", 0.5);
        m.set_gauge("occupancy", 0.75);
        assert_eq!(m.gauge("occupancy"), Some(0.75));
        assert_eq!(m.gauge("never"), None);
    }

    #[test]
    fn summaries_and_histograms_record() {
        let mut m = Metrics::new();
        for v in [1.0, 2.0, 3.0] {
            m.observe("lat", v);
            m.observe_hist("lat_h", 0.0, 10.0, 10, v);
        }
        let s = m.summary("lat").unwrap();
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!(m.histogram("lat_h").is_some());
    }

    #[test]
    fn iteration_is_name_sorted() {
        let mut m = Metrics::new();
        m.inc("zeta", 1);
        m.inc("alpha", 1);
        m.inc("mid", 1);
        let names: Vec<_> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Metrics::new();
        a.inc("x", 1);
        a.observe("s", 1.0);
        a.observe_hist("h", 0.0, 10.0, 10, 1.0);
        let mut b = Metrics::new();
        b.inc("x", 2);
        b.inc("y", 5);
        b.observe("s", 3.0);
        b.set_gauge("g", 9.0);
        b.observe_hist("h", 0.0, 10.0, 10, 3.0);
        b.observe_hist("h2", 0.0, 1.0, 4, 0.5);
        a.absorb(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
        assert_eq!(a.summary("s").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h2").unwrap().count(), 1);
    }

    #[test]
    fn snapshot_order_is_independent_of_registration_order() {
        // Two registries fed the same data in different registration orders
        // must render identical snapshots — the exporter iterates these
        // directly into JSON, so any order sensitivity would break
        // byte-identical exports across code paths.
        let mut fwd = Metrics::new();
        let mut rev = Metrics::new();
        let names = ["zeta", "alpha", "mid", "beta"];
        for n in names {
            fwd.inc(n, 1);
            fwd.observe(n, 2.0);
            fwd.observe_hist(n, 0.0, 4.0, 4, 2.0);
        }
        for n in names.iter().rev() {
            rev.inc(n, 1);
            rev.observe(n, 2.0);
            rev.observe_hist(n, 0.0, 4.0, 4, 2.0);
        }
        let f: Vec<_> = fwd.counters().collect();
        let r: Vec<_> = rev.counters().collect();
        assert_eq!(f, r);
        assert!(f.windows(2).all(|w| w[0].0 < w[1].0), "sorted: {f:?}");
        let fs: Vec<_> = fwd.summaries().map(|(k, _)| k).collect();
        let rs: Vec<_> = rev.summaries().map(|(k, _)| k).collect();
        assert_eq!(fs, rs);
        let fh: Vec<_> = fwd.histograms().map(|(k, _)| k).collect();
        let rh: Vec<_> = rev.histograms().map(|(k, _)| k).collect();
        assert_eq!(fh, rh);
        assert_eq!(fh, vec!["alpha", "beta", "mid", "zeta"]);
    }

    #[test]
    fn timeline_dedups_unchanged_values() {
        let mut t = Timeline::new();
        t.sample(SimTime(0), 1.0);
        t.sample(SimTime(10), 1.0); // no change -> no point
        t.sample(SimTime(20), 2.0);
        assert_eq!(t.points(), &[(SimTime(0), 1.0), (SimTime(20), 2.0)]);
    }

    #[test]
    fn timeline_same_instant_overwrites() {
        let mut t = Timeline::new();
        t.sample(SimTime(0), 1.0);
        t.sample(SimTime(5), 2.0);
        t.sample(SimTime(5), 3.0);
        assert_eq!(t.points(), &[(SimTime(0), 1.0), (SimTime(5), 3.0)]);
        // Overwriting back to the previous value collapses the point.
        t.sample(SimTime(5), 1.0);
        assert_eq!(t.points(), &[(SimTime(0), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn timeline_rejects_time_travel() {
        let mut t = Timeline::new();
        t.sample(SimTime(10), 1.0);
        t.sample(SimTime(5), 2.0);
    }

    #[test]
    fn value_at_steps() {
        let mut t = Timeline::new();
        t.sample(SimTime(10), 1.0);
        t.sample(SimTime(20), 3.0);
        assert_eq!(t.value_at(SimTime(5)), None);
        assert_eq!(t.value_at(SimTime(10)), Some(1.0));
        assert_eq!(t.value_at(SimTime(15)), Some(1.0));
        assert_eq!(t.value_at(SimTime(20)), Some(3.0));
        assert_eq!(t.value_at(SimTime::MAX), Some(3.0));
    }

    #[test]
    fn time_weighted_mean_weights_by_duration() {
        let mut t = Timeline::new();
        t.sample(SimTime(0), 0.0);
        t.sample(SimTime(10), 10.0);
        // 0.0 for 10 ns, 10.0 for 10 ns -> mean 5.0 at t=20.
        assert!((t.time_weighted_mean(SimTime(20)) - 5.0).abs() < 1e-12);
        // 0.0 for 10 ns, 10.0 for 30 ns -> mean 7.5 at t=40.
        assert!((t.time_weighted_mean(SimTime(40)) - 7.5).abs() < 1e-12);
        // Clamped before the second change -> all zeros.
        assert_eq!(t.time_weighted_mean(SimTime(10)), 0.0);
        assert_eq!(Timeline::new().time_weighted_mean(SimTime(10)), 0.0);
    }

    #[test]
    fn timeline_set_is_name_sorted() {
        let mut s = TimelineSet::new();
        s.sample("z", SimTime(0), 1.0);
        s.sample("a", SimTime(0), 2.0);
        let names: Vec<_> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(s.get("z").unwrap().points().len(), 1);
        assert_eq!(s.len(), 2);
    }
}
