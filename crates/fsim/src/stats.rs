//! Streaming statistics for experiment reporting.
//!
//! [`Summary`] accumulates count/mean/variance/min/max in O(1) space using
//! Welford's online algorithm; [`Histogram`] buckets samples into fixed-width
//! bins for percentile estimates. The experiment harness aggregates every
//! reported metric (wait time, overhead fraction, utilization, …) through
//! these types.

use std::fmt;

/// Online mean/variance/min/max accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another summary into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

/// A fixed-bin histogram over `[lo, hi)` with out-of-range samples clamped
/// into the edge bins. Percentiles are estimated by linear interpolation
/// within the containing bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Build a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be nonempty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Record one sample (clamped into range).
    pub fn add(&mut self, x: f64) {
        let nb = self.bins.len();
        let w = (self.hi - self.lo) / nb as f64;
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            nb - 1
        } else {
            (((x - self.lo) / w) as usize).min(nb - 1)
        };
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Estimate the `q`-quantile (`q` in `[0,1]`); 0 if empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return 0.0;
        }
        let target = q * self.total as f64;
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut acc = 0.0;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = acc + c as f64;
            if next >= target && c > 0 {
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - acc) / c as f64
                };
                return self.lo + (i as f64 + frac.clamp(0.0, 1.0)) * w;
            }
            acc = next;
        }
        self.hi
    }

    /// Bin counts (read-only view, mainly for tests and plots).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Fold another histogram into this one (bucket-wise addition).
    ///
    /// # Panics
    /// If the two histograms were built with different shapes — bin counts
    /// are only meaningful to add when the bucket boundaries agree.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "cannot merge histograms of different shapes"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Number of buckets in a [`LogHistogram`]: bucket `i` (for `i ≥ 1`) holds
/// values in `[2^(i-1), 2^i)`; bucket 0 holds exactly the value 0.
pub const LOG_BUCKETS: usize = 65;

/// A log-bucketed histogram over unsigned nanosecond latencies.
///
/// The bucket of a value is a pure function of the value (its bit length),
/// so merging two histograms is bucket-wise addition — commutative and
/// associative. Merging per-thread histograms therefore yields the same
/// bytes in any merge order, which is what lets the parallel sweep engine
/// report tail latencies that are byte-identical at every `--threads`
/// count. Exact count, sum, min, and max ride along; quantiles are
/// estimated by linear interpolation inside the containing bucket using
/// integer arithmetic only, so the reported values are deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; LOG_BUCKETS],
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; LOG_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Lower bound of bucket `i` (inclusive).
    fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Upper bound of bucket `i` (exclusive; saturates at `u64::MAX`).
    fn bucket_hi(i: usize) -> u64 {
        if i == 0 {
            1
        } else if i >= 64 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Record one latency sample, in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
        self.sum += u128::from(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Fold another histogram into this one. Commutative and associative:
    /// any merge order produces identical bytes.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact smallest sample (0 if empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 if empty).
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Exact sum of all samples.
    pub fn sum_ns(&self) -> u128 {
        self.sum
    }

    /// Mean sample (integer division; 0 if empty).
    pub fn mean_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / u128::from(self.total)) as u64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0,1]`) in nanoseconds using
    /// integer interpolation inside the containing bucket, clamped to the
    /// exact observed `[min, max]`. Returns 0 if empty.
    ///
    /// # Panics
    /// If `q` is outside `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based: ceil(q * total), at least 1.
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lo = Self::bucket_lo(i);
                let hi = Self::bucket_hi(i);
                let into = target - seen; // 1..=c
                let est = lo + (u128::from(hi - lo) * u128::from(into - 1) / u128::from(c)) as u64;
                return est.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Bucket counts (read-only view, mainly for tests).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }
}

/// A named, sorted collection of [`LogHistogram`]s.
///
/// Keys are owned strings so callers can label phases per tenant
/// (`"download@t3"`); iteration is in key order, making any rendering
/// byte-stable regardless of recording or merge order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSet {
    map: std::collections::BTreeMap<String, LogHistogram>,
}

impl HistSet {
    /// An empty set.
    pub fn new() -> Self {
        HistSet::default()
    }

    /// Record one sample into the named histogram (created on first use).
    pub fn record(&mut self, name: &str, ns: u64) {
        if let Some(h) = self.map.get_mut(name) {
            h.record(ns);
        } else {
            let mut h = LogHistogram::new();
            h.record(ns);
            self.map.insert(name.to_string(), h);
        }
    }

    /// Fold another set into this one, histogram by histogram. Any merge
    /// order produces identical bytes (see [`LogHistogram::merge`]).
    pub fn merge(&mut self, other: &HistSet) {
        for (k, h) in &other.map {
            if let Some(mine) = self.map.get_mut(k) {
                mine.merge(h);
            } else {
                self.map.insert(k.clone(), h.clone());
            }
        }
    }

    /// Look up a histogram by name.
    pub fn get(&self, name: &str) -> Option<&LogHistogram> {
        self.map.get(name)
    }

    /// All histograms in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &LogHistogram)> + '_ {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of named histograms.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no histograms exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.add(5.0);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.add((i % 100) as f64);
        }
        let med = h.quantile(0.5);
        assert!((45.0..55.0).contains(&med), "median {med}");
        assert!(h.quantile(0.0) <= h.quantile(1.0));
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(-5.0);
        h.add(500.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.add(1.0);
        b.add(1.0);
        b.add(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bins()[1], 2);
        assert_eq!(a.bins()[9], 1);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn histogram_merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        a.merge(&Histogram::new(0.0, 10.0, 5));
    }

    #[test]
    fn log_histogram_buckets_by_bit_length() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.buckets()[0], 1); // value 0
        assert_eq!(h.buckets()[1], 1); // value 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 2); // 4, 7
        assert_eq!(h.buckets()[4], 1); // 8
        assert_eq!(h.buckets()[11], 1); // 1024
        assert_eq!(h.buckets()[64], 1); // u64::MAX
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), u64::MAX);
    }

    #[test]
    fn log_histogram_quantiles_are_ordered_and_clamped() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_ns(0.50);
        let p90 = h.quantile_ns(0.90);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= h.max_ns());
        assert!(h.quantile_ns(0.0) >= h.min_ns());
        assert_eq!(h.quantile_ns(1.0), h.max_ns());
        // The median of 1..=1000 is near 500; the log-bucket estimate is
        // coarse but must land in the right bucket [512, 1024).
        assert!((256..=1000).contains(&p50), "median estimate {p50}");
        assert_eq!(h.mean_ns(), 500);
    }

    #[test]
    fn log_histogram_empty_is_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn log_histogram_merge_is_order_insensitive() {
        // The property the parallel sweep engine rests on: merging
        // per-thread histograms in any order equals single-threaded
        // accumulation, byte for byte.
        let values: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) >> 13)
            .collect();
        let mut whole = LogHistogram::new();
        for &v in &values {
            whole.record(v);
        }
        let chunks: Vec<LogHistogram> = values
            .chunks(37)
            .map(|c| {
                let mut h = LogHistogram::new();
                for &v in c {
                    h.record(v);
                }
                h
            })
            .collect();
        // Forward order.
        let mut fwd = LogHistogram::new();
        for c in &chunks {
            fwd.merge(c);
        }
        // Reverse order.
        let mut rev = LogHistogram::new();
        for c in chunks.iter().rev() {
            rev.merge(c);
        }
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
        assert_eq!(fwd.quantile_ns(0.99), whole.quantile_ns(0.99));
    }

    #[test]
    fn hist_set_records_merges_and_sorts() {
        let mut a = HistSet::new();
        a.record("zeta", 10);
        a.record("alpha", 20);
        let mut b = HistSet::new();
        b.record("zeta", 30);
        b.record("mid", 40);
        a.merge(&b);
        let names: Vec<_> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(a.get("zeta").unwrap().count(), 2);
        assert_eq!(a.get("mid").unwrap().count(), 1);
        assert_eq!(a.len(), 3);
    }
}
