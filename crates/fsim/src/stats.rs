//! Streaming statistics for experiment reporting.
//!
//! [`Summary`] accumulates count/mean/variance/min/max in O(1) space using
//! Welford's online algorithm; [`Histogram`] buckets samples into fixed-width
//! bins for percentile estimates. The experiment harness aggregates every
//! reported metric (wait time, overhead fraction, utilization, …) through
//! these types.

use std::fmt;

/// Online mean/variance/min/max accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another summary into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

/// A fixed-bin histogram over `[lo, hi)` with out-of-range samples clamped
/// into the edge bins. Percentiles are estimated by linear interpolation
/// within the containing bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Build a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be nonempty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Record one sample (clamped into range).
    pub fn add(&mut self, x: f64) {
        let nb = self.bins.len();
        let w = (self.hi - self.lo) / nb as f64;
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            nb - 1
        } else {
            (((x - self.lo) / w) as usize).min(nb - 1)
        };
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Estimate the `q`-quantile (`q` in `[0,1]`); 0 if empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return 0.0;
        }
        let target = q * self.total as f64;
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut acc = 0.0;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = acc + c as f64;
            if next >= target && c > 0 {
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - acc) / c as f64
                };
                return self.lo + (i as f64 + frac.clamp(0.0, 1.0)) * w;
            }
            acc = next;
        }
        self.hi
    }

    /// Bin counts (read-only view, mainly for tests and plots).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.add(5.0);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.add((i % 100) as f64);
        }
        let med = h.quantile(0.5);
        assert!((45.0..55.0).contains(&med), "median {med}");
        assert!(h.quantile(0.0) <= h.quantile(1.0));
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(-5.0);
        h.add(500.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
    }
}
