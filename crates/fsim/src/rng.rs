//! Deterministic pseudo-randomness for workloads and heuristics.
//!
//! [`SimRng`] wraps a splitmix64-seeded xoshiro256** generator implemented
//! here (8 lines of arithmetic) rather than pulling the full `rand` trait
//! machinery into every hot loop; `rand` is still used where distributions
//! from its ecosystem are convenient. All experiment randomness flows
//! through this type, keyed by an explicit `u64` seed, so tables are
//! reproducible across runs and platforms.

/// A deterministic PRNG (xoshiro256**) with convenience samplers.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seed the generator. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent stream for a named sub-component.
    ///
    /// Streams derived with different tags are statistically independent;
    /// the same `(seed, tag)` pair always yields the same stream.
    pub fn derive(&self, tag: u64) -> SimRng {
        let mut sm = self.s[0] ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The raw generator state, for checkpointing. Restoring with
    /// [`SimRng::from_state`] resumes the stream exactly where it was.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`SimRng::state`] snapshot.
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method: unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` in `[lo, hi]`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Used for Poisson inter-arrival times in the workload generators.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// A Zipf-distributed sampler over ranks `0..n` with skew `s`.
///
/// Rank 0 is the most popular item. Used by the overlay and paging
/// experiments to model the paper's "common functions which are frequently
/// used" versus "specific functions which are typically rarely used".
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for `n` items with exponent `s` (s = 0 is uniform;
    /// larger `s` concentrates mass on low ranks).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "streams should be effectively disjoint");
    }

    #[test]
    fn derive_is_stable_and_independent() {
        let root = SimRng::new(7);
        let mut d1 = root.derive(1);
        let mut d1b = root.derive(1);
        let mut d2 = root.derive(2);
        assert_eq!(d1.next_u64(), d1b.next_u64());
        assert_ne!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::new(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // expected 10_000; allow 10% slack.
            assert!((9_000..11_000).contains(&c), "count {c} out of tolerance");
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let z = Zipf::new(50, 1.0);
        let mut r = SimRng::new(6);
        let mut counts = vec![0usize; 50];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[49]);
    }

    #[test]
    fn zipf_zero_skew_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        let mut r = SimRng::new(8);
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(9);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..100).collect();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SimRng::new(10);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range_u64(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
