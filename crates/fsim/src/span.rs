//! Hierarchical scoped-span host profiling.
//!
//! This is the *wall-clock* sibling of the simulated-time observability in
//! [`crate::obs`]: RAII guards time how long the host spends in a region of
//! code, nested guards form a span tree, and the per-thread records merge
//! into a [`SpanProfile`] whose rendering is byte-stable (paths iterate in
//! sorted order; merging is commutative). It subsumes the ad-hoc
//! `FlowProfile` timers the compilation flow used to carry: `pnr::compile`
//! now records `pnr;map`, `pnr;pack`, … spans here, and the `vfpga` event
//! loop records `system;…` spans at every manager boundary.
//!
//! Recording is **off by default** and costs one thread-local check per
//! guard when off, so instrumented hot paths stay cheap in ordinary runs.
//! A profiling harness wraps the region of interest in [`scoped`]:
//!
//! ```
//! use fsim::span;
//! let (result, profile) = span::scoped(|| {
//!     let _outer = span::guard("work");
//!     {
//!         let _inner = span::guard("inner");
//!     }
//!     42
//! });
//! assert_eq!(result, 42);
//! assert_eq!(profile.get("work").unwrap().count, 1);
//! assert_eq!(profile.get("work;inner").unwrap().count, 1);
//! ```
//!
//! Thread-local buffers merge deterministically at join: each worker runs
//! its points under [`scoped`] and the harness merges the returned profiles
//! in *point* order (the sweep engine already joins results that way), so
//! the merged span structure is independent of which thread ran what.
//! Wall-clock durations themselves are inherently volatile — they belong in
//! the volatile `host` section of any export, never in deterministic
//! output.

use crate::stats::LogHistogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Separator between span names in a path — the flamegraph
/// collapsed-stack convention (`parent;child;grandchild`).
pub const PATH_SEP: char = ';';

/// Accumulated statistics for one span path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Inclusive wall time: everything between enter and exit.
    pub total_ns: u64,
    /// Wall time attributed to child spans (inclusive of *their* children).
    pub child_ns: u64,
    /// Per-invocation inclusive latency distribution.
    pub hist: LogHistogram,
}

impl SpanStat {
    /// Exclusive wall time: inclusive minus time spent in child spans.
    pub fn exclusive_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }
}

/// A merged collection of span statistics keyed by `;`-joined path.
///
/// Iteration is in path order; because `;` sorts before every printable
/// identifier character, a parent path always precedes its children, which
/// makes the indented tree rendering a single linear pass.
#[derive(Debug, Clone, Default)]
pub struct SpanProfile {
    spans: BTreeMap<String, SpanStat>,
}

impl SpanProfile {
    /// An empty profile.
    pub fn new() -> Self {
        SpanProfile::default()
    }

    /// Fold another profile into this one. Commutative: any merge order
    /// produces the same structure and sums.
    pub fn merge(&mut self, other: &SpanProfile) {
        for (path, s) in &other.spans {
            if let Some(mine) = self.spans.get_mut(path) {
                mine.count += s.count;
                mine.total_ns += s.total_ns;
                mine.child_ns += s.child_ns;
                mine.hist.merge(&s.hist);
            } else {
                self.spans.insert(path.clone(), s.clone());
            }
        }
    }

    /// Look up a span by its full path (e.g. `"system;dispatch"`).
    pub fn get(&self, path: &str) -> Option<&SpanStat> {
        self.spans.get(path)
    }

    /// All spans in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SpanStat)> + '_ {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of distinct span paths.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Sum of inclusive time over root spans (paths with no parent).
    pub fn root_total_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|(p, _)| !p.contains(PATH_SEP))
            .map(|(_, s)| s.total_ns)
            .sum()
    }

    /// Render the span tree: one line per span, indented by depth, with
    /// call count and inclusive/exclusive milliseconds. Parents precede
    /// children by the path ordering, so this is a single pass.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>12} {:>12}",
            "span", "count", "incl (ms)", "excl (ms)"
        );
        for (path, s) in &self.spans {
            let depth = path.matches(PATH_SEP).count();
            let name = path.rsplit(PATH_SEP).next().unwrap_or(path);
            let label = format!("{}{}", "  ".repeat(depth), name);
            let _ = writeln!(
                out,
                "{:<40} {:>8} {:>12.3} {:>12.3}",
                label,
                s.count,
                s.total_ns as f64 / 1e6,
                s.exclusive_ns() as f64 / 1e6,
            );
        }
        out
    }

    /// Flamegraph-compatible collapsed-stack text: one
    /// `path;to;span <exclusive_ns>` line per span, in path order. Feed
    /// it straight to `flamegraph.pl` (or any collapsed-stack consumer).
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, s) in &self.spans {
            let _ = writeln!(out, "{path} {}", s.exclusive_ns());
        }
        out
    }
}

struct Frame {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

struct Recorder {
    stack: Vec<Frame>,
    done: BTreeMap<String, SpanStat>,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            stack: Vec::with_capacity(8),
            done: BTreeMap::new(),
        }
    }
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Whether span recording is active on this thread.
pub fn profiling_enabled() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// An RAII span: records the wall time from construction to drop under the
/// current span path. A no-op (one thread-local check) when recording is
/// not enabled on this thread.
#[must_use = "a span guard times the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    name: &'static str,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        RECORDER.with(|r| {
            let mut slot = r.borrow_mut();
            let Some(rec) = slot.as_mut() else { return };
            // Guards are strictly LIFO within a thread; a mismatch means a
            // guard escaped its scope — drop the record rather than corrupt
            // the tree.
            if rec.stack.last().map(|f| f.name) != Some(self.name) {
                debug_assert!(false, "span guard '{}' dropped out of order", self.name);
                return;
            }
            let frame = rec.stack.pop().expect("matched above");
            let dur = frame.start.elapsed().as_nanos() as u64;
            let mut path = String::with_capacity(32);
            for f in &rec.stack {
                path.push_str(f.name);
                path.push(PATH_SEP);
            }
            path.push_str(self.name);
            let e = rec.done.entry(path).or_default();
            e.count += 1;
            e.total_ns += dur;
            e.child_ns += frame.child_ns;
            e.hist.record(dur);
            if let Some(parent) = rec.stack.last_mut() {
                parent.child_ns += dur;
            }
        });
    }
}

/// Open a span named `name` under the current span path. Close it by
/// dropping the returned guard.
pub fn guard(name: &'static str) -> SpanGuard {
    let active = RECORDER.with(|r| {
        let mut slot = r.borrow_mut();
        match slot.as_mut() {
            Some(rec) => {
                rec.stack.push(Frame {
                    name,
                    start: Instant::now(),
                    child_ns: 0,
                });
                true
            }
            None => false,
        }
    });
    SpanGuard { name, active }
}

/// Run `f` inside a span named `name`.
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _g = guard(name);
    f()
}

/// Run `f` with span recording enabled on this thread, returning its result
/// and the recorded profile. Nesting is supported: an outer [`scoped`]'s
/// recorder is saved and restored, so a library can profile internally
/// without clobbering its caller's spans (the inner region's spans simply
/// don't appear in the outer profile).
pub fn scoped<R>(f: impl FnOnce() -> R) -> (R, SpanProfile) {
    let prev = RECORDER.with(|r| r.borrow_mut().replace(Recorder::new()));
    let out = f();
    let rec = RECORDER.with(|r| {
        let rec = r.borrow_mut().take();
        *r.borrow_mut() = prev;
        rec
    });
    let rec = rec.expect("scoped installed a recorder above");
    debug_assert!(
        rec.stack.is_empty(),
        "span guards must not outlive span::scoped"
    );
    (out, SpanProfile { spans: rec.done })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_guards_are_noops() {
        assert!(!profiling_enabled());
        let g = guard("nothing");
        drop(g);
        let (_, p) = scoped(|| ());
        assert!(p.is_empty());
    }

    #[test]
    fn nested_spans_form_paths_and_exclusive_subtracts_children() {
        let ((), p) = scoped(|| {
            let _a = guard("a");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _b = guard("b");
                std::thread::sleep(Duration::from_millis(2));
            }
            {
                let _b = guard("b");
            }
        });
        assert!(!profiling_enabled());
        let a = p.get("a").unwrap();
        let b = p.get("a;b").unwrap();
        assert_eq!(a.count, 1);
        assert_eq!(b.count, 2);
        assert!(a.total_ns >= b.total_ns, "parent includes child time");
        assert_eq!(a.child_ns, b.total_ns, "child time attributed to parent");
        assert!(a.exclusive_ns() <= a.total_ns);
        assert_eq!(b.hist.count(), 2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.root_total_ns(), a.total_ns);
    }

    #[test]
    fn sibling_spans_at_root_are_separate() {
        let ((), p) = scoped(|| {
            time("x", || ());
            time("y", || ());
            time("x", || ());
        });
        assert_eq!(p.get("x").unwrap().count, 2);
        assert_eq!(p.get("y").unwrap().count, 1);
        let paths: Vec<_> = p.iter().map(|(k, _)| k).collect();
        assert_eq!(paths, vec!["x", "y"], "iteration is path-sorted");
    }

    #[test]
    fn merge_is_order_insensitive_on_structure_and_sums() {
        let mk = |reps: u64| {
            let ((), p) = scoped(|| {
                for _ in 0..reps {
                    let _a = guard("a");
                    let _b = guard("b");
                }
            });
            p
        };
        let p1 = mk(3);
        let p2 = mk(5);
        let mut fwd = SpanProfile::new();
        fwd.merge(&p1);
        fwd.merge(&p2);
        let mut rev = SpanProfile::new();
        rev.merge(&p2);
        rev.merge(&p1);
        assert_eq!(fwd.get("a").unwrap().count, 8);
        assert_eq!(rev.get("a").unwrap().count, 8);
        assert_eq!(fwd.get("a;b").unwrap().count, 8);
        assert_eq!(
            fwd.get("a").unwrap().total_ns,
            rev.get("a").unwrap().total_ns
        );
        let f: Vec<_> = fwd.iter().map(|(k, _)| k.to_string()).collect();
        let r: Vec<_> = rev.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(f, r);
    }

    #[test]
    fn scoped_nests_without_clobbering_outer() {
        let ((), outer) = scoped(|| {
            let _o = guard("outer");
            let ((), inner) = scoped(|| {
                time("inner", || ());
            });
            assert!(inner.get("inner").is_some());
            assert!(inner.get("outer").is_none(), "inner profile is fresh");
        });
        assert!(outer.get("outer").is_some());
        assert!(
            outer.get("inner").is_none(),
            "inner spans stay in the inner profile"
        );
    }

    #[test]
    fn tree_and_collapsed_render() {
        let ((), p) = scoped(|| {
            let _a = guard("root");
            time("leaf", || ());
        });
        let tree = p.render_tree();
        assert!(tree.contains("root"), "{tree}");
        assert!(tree.contains("  leaf"), "child indented: {tree}");
        let collapsed = p.collapsed();
        assert!(collapsed.contains("root;leaf "), "{collapsed}");
        for line in collapsed.lines() {
            let (_, n) = line.rsplit_once(' ').unwrap();
            let _: u64 = n.parse().expect("collapsed lines end in a number");
        }
    }
}
