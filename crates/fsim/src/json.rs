//! A minimal hand-rolled JSON writer and reader.
//!
//! The container has no serde; a small value tree with a pretty-printer
//! and a recursive-descent [`Json::parse`] is enough. Object keys keep
//! insertion order — exports are byte-stable for identical runs — and the
//! parser exists so CI can verify that what a bench emitted actually reads
//! back (a malformed export otherwise goes unnoticed until someone's
//! plotting script chokes on it). It lives in `fsim` (the dependency
//! root) so both the OS layer (checkpoint serialization) and the bench
//! exporter share one format.
//!
//! The parser is defensive: malformed input yields a structured
//! [`ParseError`] with a byte offset, nesting is bounded by
//! [`MAX_PARSE_DEPTH`] (a hostile document cannot blow the stack), and
//! numbers that overflow `f64` to infinity are rejected rather than
//! silently becoming non-finite values the writer would re-emit as
//! `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An unsigned integer (kept exact — counters can exceed 2^53).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v.into())
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// An object under construction (fluent, insertion-ordered).
#[derive(Debug, Clone, Default)]
pub struct Obj {
    fields: Vec<(String, Json)>,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Add (or append — duplicate keys are the caller's bug) a field.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Finish into a [`Json::Obj`].
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

impl From<Obj> for Json {
    fn from(o: Obj) -> Json {
        o.build()
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `indent` levels of two-space padding without allocating (the
/// old `"  ".repeat(n)` built a fresh `String` per emitted line, which
/// dominated large trace exports).
fn push_pad(out: &mut String, indent: usize) {
    const SPACES: &str = "                                                                ";
    let mut n = indent * 2;
    while n > 0 {
        let take = n.min(SPACES.len());
        out.push_str(&SPACES[..take]);
        n -= take;
    }
}

impl Json {
    fn write_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // Display for f64 is the shortest round-trip form, but
                    // bare "1" would re-read as an integer; keep it a float.
                    if *v == v.trunc() && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested ones break.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write_into(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        push_pad(out, indent + 1);
                        item.write_into(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    push_pad(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    push_pad(out, indent + 1);
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Cheap upper bound on the rendered length (including the trailing
    /// newline). Used to pre-size the output buffer: the old growth-by-
    /// doubling `String` re-copied large trace exports O(log n) times,
    /// which showed up as quadratic-feeling wall time on 10k-event dumps.
    /// The bound assumes every container breaks onto multiple lines (the
    /// inline scalar-array layout is always shorter) and every string
    /// character escapes to its worst case.
    pub fn rendered_size_hint(&self) -> usize {
        self.size_hint_at(0) + 1
    }

    fn size_hint_at(&self, indent: usize) -> usize {
        match self {
            Json::Null => 4,
            Json::Bool(_) => 5,
            // u64/i64 fit in 20 digits plus sign.
            Json::UInt(_) | Json::Int(_) => 21,
            // Shortest round-trip f64 is at most 17 significant digits
            // plus sign, point, and exponent.
            Json::Num(_) => 25,
            // Worst case per char is a \uXXXX escape: 6 bytes per input
            // byte, plus the surrounding quotes.
            Json::Str(s) => 6 * s.len() + 2,
            Json::Arr(items) => {
                // Broken layout: "[\n" + per item (pad + value + ",\n")
                // + pad + "]". The inline layout emits strictly less.
                let mut n = 2 + 2 * indent + 1;
                for item in items {
                    n += 2 * (indent + 1) + item.size_hint_at(indent + 1) + 2;
                }
                n
            }
            Json::Obj(fields) => {
                let mut n = 2 + 2 * indent + 1;
                for (k, v) in fields {
                    n += 2 * (indent + 1) + (6 * k.len() + 2) + 2 + v.size_hint_at(indent + 1) + 2;
                }
                n
            }
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    /// The output buffer is pre-sized from [`Json::rendered_size_hint`],
    /// so rendering performs a single allocation.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.rendered_size_hint());
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parse a JSON document. Integers without a fraction or exponent come
    /// back as [`Json::UInt`]/[`Json::Int`], everything else numeric as
    /// [`Json::Num`], so `parse(render(x))` round-trips the value tree.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Field lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum container nesting [`Json::parse`] accepts. Render has no such
/// limit — the writer only emits trees the program actually built — but
/// the reader must not let input depth translate into stack depth.
pub const MAX_PARSE_DEPTH: usize = 128;

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> ParseError {
        ParseError {
            at: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_PARSE_DEPTH}")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.array_inner();
        self.depth -= 1;
        r
    }

    fn array_inner(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.object_inner();
        self.depth -= 1;
        r
    }

    fn object_inner(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates would need pairing; benches never
                            // emit them, so reject instead of mis-decoding.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid utf-8"))?;
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    s.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            let v: f64 = text.parse().map_err(|_| self.err("bad number"))?;
            if !v.is_finite() {
                // "1e999" parses to infinity; the writer would re-emit it
                // as null, so round-tripping silently loses the value.
                return Err(self.err("number does not fit a finite f64"));
            }
            Ok(Json::Num(v))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

fn utf8_len(b: u8) -> Option<usize> {
    match b {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::UInt(7).render(), "7\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::Num(1.5).render(), "1.5\n");
        assert_eq!(Json::Num(2.0).render(), "2.0\n", "floats keep a decimal");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
    }

    #[test]
    fn strings_escape() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let j = Obj::new().set("z", 1u64).set("a", "x").build();
        let r = j.render();
        assert!(r.find("\"z\"").unwrap() < r.find("\"a\"").unwrap());
    }

    #[test]
    fn scalar_arrays_inline_nested_break() {
        let flat = Json::Arr(vec![Json::UInt(1), Json::UInt(2)]);
        assert_eq!(flat.render(), "[1, 2]\n");
        let nested = Json::Arr(vec![flat.clone()]);
        assert!(nested.render().contains('\n'));
    }

    #[test]
    fn parse_round_trips_render() {
        let j = Obj::new()
            .set("schema", "vfpga-bench/1")
            .set("count", 42u64)
            .set("neg", -7i64)
            .set("frac", 0.25)
            .set("whole", 2.0)
            .set("flag", true)
            .set("nothing", Json::Null)
            .set("text", "a\"b\\c\nd\ttab")
            .set("empty_arr", Json::Arr(vec![]))
            .set("empty_obj", Obj::new())
            .set(
                "rows",
                Json::Arr(vec![
                    Obj::new().set("x", 1u64).set("y", 1.5).build(),
                    Obj::new().set("x", 2u64).set("y", 2.5).build(),
                ]),
            )
            .build();
        let back = Json::parse(&j.render()).unwrap();
        assert_eq!(back, j);
        // And a second trip is byte-stable.
        assert_eq!(back.render(), j.render());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} extra",
            "\"unterminated",
            "nulll",
            "{'single': 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn parse_accessors_navigate() {
        let j = Json::parse("{\"rows\": [{\"x\": 3}], \"n\": 1}").unwrap();
        let rows = j.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("x"), Some(&Json::UInt(3)));
        assert_eq!(j.get("missing"), None);
    }

    /// Seeded random value-tree generator for the property tests. Depth
    /// is bounded so trees stay within [`MAX_PARSE_DEPTH`]; leaves cover
    /// every scalar variant including awkward strings.
    fn random_value(rng: &mut crate::SimRng, depth: usize) -> Json {
        let pick = if depth >= 6 {
            rng.below(6) // leaves only
        } else {
            rng.below(8)
        };
        match pick {
            0 => Json::Null,
            1 => Json::Bool(rng.chance(0.5)),
            2 => Json::UInt(rng.next_u64()),
            // Strictly negative: non-negative integers re-read as UInt.
            3 => Json::Int(-((rng.below(i64::MAX as u64) as i64) + 1)),
            4 => {
                // Finite floats only; keep them representable.
                let v = (rng.next_u64() % 1_000_000) as f64 / 64.0;
                Json::Num(if rng.chance(0.5) { -v } else { v })
            }
            5 => {
                let tricky = [
                    "",
                    "a\"b",
                    "back\\slash",
                    "line\nbreak",
                    "tab\there",
                    "\u{1}\u{1f}",
                    "héllo → wörld",
                    "日本語",
                ];
                Json::Str(tricky[rng.below(tricky.len() as u64) as usize].to_string())
            }
            6 => {
                let n = rng.below(4) as usize;
                Json::Arr((0..n).map(|_| random_value(rng, depth + 1)).collect())
            }
            _ => {
                let n = rng.below(4) as usize;
                Json::Obj(
                    (0..n)
                        .map(|i| (format!("k{i}"), random_value(rng, depth + 1)))
                        .collect(),
                )
            }
        }
    }

    #[test]
    fn property_random_trees_round_trip() {
        let mut rng = crate::SimRng::new(0x1509);
        for case in 0..200 {
            let tree = random_value(&mut rng, 0);
            let text = tree.render();
            let back = Json::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(back, tree, "case {case} diverged");
            assert_eq!(back.render(), text, "case {case} not byte-stable");
        }
    }

    #[test]
    fn property_escaped_strings_round_trip() {
        let mut rng = crate::SimRng::new(0xE5C);
        for _ in 0..200 {
            let len = rng.below(24) as usize;
            let s: String = (0..len)
                .map(|_| {
                    // Bias toward characters the escaper must handle.
                    match rng.below(6) {
                        0 => '"',
                        1 => '\\',
                        2 => '\n',
                        3 => char::from_u32(rng.below(0x20) as u32).unwrap(),
                        4 => char::from_u32(0x3b1 + rng.below(24) as u32).unwrap(),
                        _ => char::from_u32(b'a' as u32 + rng.below(26) as u32).unwrap(),
                    }
                })
                .collect();
            let j = Json::Str(s);
            assert_eq!(Json::parse(&j.render()).unwrap(), j);
        }
    }

    #[test]
    fn deep_nesting_round_trips_up_to_the_limit() {
        // MAX_PARSE_DEPTH nested arrays round-trip...
        let mut tree = Json::UInt(1);
        for _ in 0..MAX_PARSE_DEPTH {
            tree = Json::Arr(vec![tree]);
        }
        let text = tree.render();
        assert_eq!(Json::parse(&text).unwrap(), tree);

        // ...one level beyond is rejected with a structured offset
        // pointing at the bracket that would exceed the limit.
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH + 1),
            "]".repeat(MAX_PARSE_DEPTH + 1)
        );
        let err = Json::parse(&over).unwrap_err();
        assert!(err.reason.contains("nesting"), "got: {}", err.reason);
        assert_eq!(err.at, MAX_PARSE_DEPTH);
        // And a hostile flat-text bomb cannot blow the stack.
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn non_finite_numbers_are_rejected_with_offset() {
        for bad in ["1e999", "-1e999", "[1, 2, 1e400]", "{\"x\": 1.5e308999}"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(
                err.reason.contains("finite"),
                "{bad:?} gave wrong reason: {}",
                err.reason
            );
            assert!(err.at <= bad.len());
        }
        // NaN/Infinity literals are not JSON at all.
        assert!(Json::parse("NaN").is_err());
        assert!(Json::parse("Infinity").is_err());
        // Large-but-finite still parses.
        assert_eq!(Json::parse("1e308").unwrap(), Json::Num(1e308));
    }

    #[test]
    fn parse_errors_carry_byte_offsets() {
        let err = Json::parse("{\"a\": 1, \"b\": }").unwrap_err();
        assert_eq!(err.at, 14, "offset of the missing value");
        let err = Json::parse("[1, 2, x]").unwrap_err();
        assert_eq!(err.at, 7);
        assert!(err.to_string().contains("byte 7"));
    }

    #[test]
    fn size_hint_bounds_every_random_tree() {
        let mut rng = crate::SimRng::new(0x51ED);
        for case in 0..200 {
            let tree = random_value(&mut rng, 0);
            let text = tree.render();
            assert!(
                text.len() <= tree.rendered_size_hint(),
                "case {case}: rendered {} bytes > hint {}",
                text.len(),
                tree.rendered_size_hint()
            );
        }
    }

    #[test]
    fn large_trace_export_renders_in_one_allocation() {
        // Regression for the quadratic-growth path: a 10k-event trace-like
        // array must render into the pre-sized buffer (hint >= final
        // length, so the String never reallocates) and still parse back.
        let events: Vec<Json> = (0..10_000u64)
            .map(|i| {
                Obj::new()
                    .set("at_s", i as f64 * 0.001)
                    .set("tag", if i % 3 == 0 { "config" } else { "dispatch" })
                    .set("task", i % 12)
                    .set("detail", format!("event #{i} \"quoted\"\npayload"))
                    .build()
            })
            .collect();
        let doc = Obj::new()
            .set("schema", "vfpga-bench/1")
            .set("events", Json::Arr(events))
            .build();
        let hint = doc.rendered_size_hint();
        let text = doc.render();
        assert!(
            text.len() <= hint,
            "rendered {} bytes but hint was {hint}",
            text.len()
        );
        // The bound must stay an estimate, not a wild overshoot: worst-case
        // string escaping is 6x, so allow that plus slack.
        assert!(
            hint <= text.len() * 8,
            "hint {hint} overshoots {}",
            text.len()
        );
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("events").and_then(Json::as_arr).unwrap().len(),
            10_000
        );
    }

    #[test]
    fn render_is_valid_enough_to_eyeball() {
        let j = Obj::new()
            .set("schema", "vfpga-bench/1")
            .set("values", Json::Arr(vec![Json::Num(0.25), Json::UInt(4)]))
            .set("nested", Obj::new().set("empty", Json::Arr(vec![])))
            .build();
        let r = j.render();
        assert!(r.starts_with("{\n"));
        assert!(r.contains("\"schema\": \"vfpga-bench/1\""));
        assert!(r.contains("\"empty\": []"));
        assert!(r.ends_with("}\n"));
    }
}
