//! Deterministic fault injection.
//!
//! RAM-based FPGAs fail in ways an OS layer must survive: a configuration
//! download can be corrupted in transit (detected by the bitstream CRC), a
//! configuration-memory cell can be upset while a circuit runs (an SEU,
//! detected only by scrubbing readback), and fabric columns can fail
//! permanently, retiring capacity mid-run. A [`FaultPlan`] describes the
//! rates of those three processes; a [`FaultInjector`] turns the plan into
//! a reproducible stream of faults, one independent [`SimRng`] sub-stream
//! per fault class so enabling one class never perturbs another.
//!
//! Everything here is deterministic: the same plan (including its seed)
//! yields bit-identical fault sequences, so a fault-injected run is as
//! reproducible as a fault-free one.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Rates for the three modeled fault classes. All rates default to zero:
/// `FaultPlan::default()` (or [`FaultPlan::none`]) injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's random streams.
    pub seed: u64,
    /// Probability that any single configuration download arrives
    /// corrupted (caught by the bitstream CRC on the device).
    pub download_corruption: f64,
    /// Poisson rate (events per simulated second) of configuration-memory
    /// upsets striking a uniformly random fabric column.
    pub seu_rate_per_s: f64,
    /// Poisson rate (events per simulated second) of permanent column
    /// failures.
    pub column_failure_rate_per_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            download_corruption: 0.0,
            seu_rate_per_s: 0.0,
            column_failure_rate_per_s: 0.0,
        }
    }

    /// Whether every fault class is disabled.
    pub fn is_zero(&self) -> bool {
        self.download_corruption <= 0.0
            && self.seu_rate_per_s <= 0.0
            && self.column_failure_rate_per_s <= 0.0
    }
}

/// Turns a [`FaultPlan`] into reproducible fault streams.
///
/// Each fault class draws from its own derived RNG stream, so consuming
/// (say) download-corruption randomness never shifts the SEU sequence.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    cols: u32,
    dl_rng: SimRng,
    seu_rng: SimRng,
    col_rng: SimRng,
}

impl FaultInjector {
    /// An injector over a device with `cols` fabric columns.
    pub fn new(plan: FaultPlan, cols: u32) -> Self {
        let root = SimRng::new(plan.seed);
        FaultInjector {
            plan,
            cols: cols.max(1),
            dl_rng: root.derive(1),
            seu_rng: root.derive(2),
            col_rng: root.derive(3),
        }
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide whether the download that just happened was corrupted.
    /// Consumes randomness only when the corruption probability is
    /// nonzero, so a zero-rate plan is bit-identical to no injector.
    pub fn corrupt_download(&mut self) -> bool {
        self.plan.download_corruption > 0.0 && self.dl_rng.chance(self.plan.download_corruption)
    }

    /// Time until the next configuration-memory upset (exponential
    /// interarrival), or `None` when SEUs are disabled.
    pub fn next_seu(&mut self) -> Option<SimDuration> {
        Self::interarrival(&mut self.seu_rng, self.plan.seu_rate_per_s)
    }

    /// The column struck by an upset (uniform over the fabric).
    pub fn seu_column(&mut self) -> u32 {
        self.seu_rng.below(u64::from(self.cols)) as u32
    }

    /// Time until the next permanent column failure, or `None` when
    /// column failures are disabled.
    pub fn next_column_failure(&mut self) -> Option<SimDuration> {
        Self::interarrival(&mut self.col_rng, self.plan.column_failure_rate_per_s)
    }

    /// The column that fails permanently (uniform over the fabric).
    pub fn failed_column(&mut self) -> u32 {
        self.col_rng.below(u64::from(self.cols)) as u32
    }

    fn interarrival(rng: &mut SimRng, rate_per_s: f64) -> Option<SimDuration> {
        if rate_per_s <= 0.0 {
            return None;
        }
        let mean_ns = 1e9 / rate_per_s;
        let ns = rng.exp(mean_ns).ceil() as u64;
        Some(SimDuration::from_nanos(ns.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            download_corruption: 0.2,
            seu_rate_per_s: 50.0,
            column_failure_rate_per_s: 2.0,
        }
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 20);
        assert!(FaultPlan::none().is_zero());
        for _ in 0..100 {
            assert!(!inj.corrupt_download());
        }
        assert_eq!(inj.next_seu(), None);
        assert_eq!(inj.next_column_failure(), None);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let mut a = FaultInjector::new(plan(42), 20);
        let mut b = FaultInjector::new(plan(42), 20);
        for _ in 0..200 {
            assert_eq!(a.corrupt_download(), b.corrupt_download());
            assert_eq!(a.next_seu(), b.next_seu());
            assert_eq!(a.seu_column(), b.seu_column());
            assert_eq!(a.next_column_failure(), b.next_column_failure());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(plan(1), 20);
        let mut b = FaultInjector::new(plan(2), 20);
        let sa: Vec<_> = (0..50).map(|_| a.next_seu()).collect();
        let sb: Vec<_> = (0..50).map(|_| b.next_seu()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn streams_are_independent() {
        // Draining download randomness must not shift the SEU stream.
        let mut a = FaultInjector::new(plan(7), 20);
        let mut b = FaultInjector::new(plan(7), 20);
        for _ in 0..100 {
            a.corrupt_download();
        }
        for _ in 0..20 {
            assert_eq!(a.next_seu(), b.next_seu());
        }
    }

    #[test]
    fn seu_interarrival_mean_tracks_rate() {
        // 1000 draws at 100 events/s: mean should be ~10 ms (loose bound).
        let mut inj = FaultInjector::new(
            FaultPlan {
                seed: 3,
                seu_rate_per_s: 100.0,
                ..FaultPlan::none()
            },
            20,
        );
        let n = 1000;
        let total: u64 = (0..n).map(|_| inj.next_seu().unwrap().as_nanos()).sum();
        let mean_ms = total as f64 / n as f64 / 1e6;
        assert!(
            (5.0..20.0).contains(&mean_ms),
            "mean interarrival {mean_ms} ms implausible for 100/s"
        );
    }

    #[test]
    fn columns_stay_in_range() {
        let mut inj = FaultInjector::new(plan(9), 13);
        for _ in 0..500 {
            assert!(inj.seu_column() < 13);
            assert!(inj.failed_column() < 13);
        }
    }
}
