//! Deterministic fault injection.
//!
//! RAM-based FPGAs fail in ways an OS layer must survive: a configuration
//! download can be corrupted in transit (detected by the bitstream CRC), a
//! configuration-memory cell can be upset while a circuit runs (an SEU,
//! detected only by scrubbing readback), and fabric columns can fail
//! permanently, retiring capacity mid-run. A [`FaultPlan`] describes the
//! rates of those three processes; a [`FaultInjector`] turns the plan into
//! a reproducible stream of faults, one independent [`SimRng`] sub-stream
//! per fault class so enabling one class never perturbs another.
//!
//! Everything here is deterministic: the same plan (including its seed)
//! yields bit-identical fault sequences, so a fault-injected run is as
//! reproducible as a fault-free one.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Rates for the three modeled fault classes. All rates default to zero:
/// `FaultPlan::default()` (or [`FaultPlan::none`]) injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's random streams.
    pub seed: u64,
    /// Probability that any single configuration download arrives
    /// corrupted (caught by the bitstream CRC on the device).
    pub download_corruption: f64,
    /// Poisson rate (events per simulated second) of configuration-memory
    /// upsets striking a uniformly random fabric column.
    pub seu_rate_per_s: f64,
    /// Poisson rate (events per simulated second) of permanent column
    /// failures.
    pub column_failure_rate_per_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            download_corruption: 0.0,
            seu_rate_per_s: 0.0,
            column_failure_rate_per_s: 0.0,
        }
    }

    /// Whether every fault class is disabled.
    pub fn is_zero(&self) -> bool {
        self.download_corruption <= 0.0
            && self.seu_rate_per_s <= 0.0
            && self.column_failure_rate_per_s <= 0.0
    }
}

/// Turns a [`FaultPlan`] into reproducible fault streams.
///
/// Each fault class draws from its own derived RNG stream, so consuming
/// (say) download-corruption randomness never shifts the SEU sequence.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    cols: u32,
    dl_rng: SimRng,
    seu_rng: SimRng,
    col_rng: SimRng,
}

impl FaultInjector {
    /// An injector over a device with `cols` fabric columns.
    pub fn new(plan: FaultPlan, cols: u32) -> Self {
        let root = SimRng::new(plan.seed);
        FaultInjector {
            plan,
            cols: cols.max(1),
            dl_rng: root.derive(1),
            seu_rng: root.derive(2),
            col_rng: root.derive(3),
        }
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide whether the download that just happened was corrupted.
    /// Consumes randomness only when the corruption probability is
    /// nonzero, so a zero-rate plan is bit-identical to no injector.
    pub fn corrupt_download(&mut self) -> bool {
        self.plan.download_corruption > 0.0 && self.dl_rng.chance(self.plan.download_corruption)
    }

    /// Time until the next configuration-memory upset (exponential
    /// interarrival), or `None` when SEUs are disabled.
    pub fn next_seu(&mut self) -> Option<SimDuration> {
        Self::interarrival(&mut self.seu_rng, self.plan.seu_rate_per_s)
    }

    /// The column struck by an upset (uniform over the fabric).
    pub fn seu_column(&mut self) -> u32 {
        self.seu_rng.below(u64::from(self.cols)) as u32
    }

    /// Time until the next permanent column failure, or `None` when
    /// column failures are disabled.
    pub fn next_column_failure(&mut self) -> Option<SimDuration> {
        Self::interarrival(&mut self.col_rng, self.plan.column_failure_rate_per_s)
    }

    /// The column that fails permanently (uniform over the fabric).
    pub fn failed_column(&mut self) -> u32 {
        self.col_rng.below(u64::from(self.cols)) as u32
    }

    fn interarrival(rng: &mut SimRng, rate_per_s: f64) -> Option<SimDuration> {
        if rate_per_s <= 0.0 {
            return None;
        }
        let mean_ns = 1e9 / rate_per_s;
        let ns = rng.exp(mean_ns).ceil() as u64;
        Some(SimDuration::from_nanos(ns.max(1)))
    }

    /// Snapshot the three stream states (download, SEU, column) for
    /// checkpointing. Restoring via
    /// [`FaultInjector::restore_stream_states`] resumes every fault
    /// stream exactly where it was, so a checkpoint-restored run draws
    /// the same fault sequence the uninterrupted run would have.
    pub fn stream_states(&self) -> [[u64; 4]; 3] {
        [
            self.dl_rng.state(),
            self.seu_rng.state(),
            self.col_rng.state(),
        ]
    }

    /// Rebuild the three fault streams from a
    /// [`FaultInjector::stream_states`] snapshot.
    pub fn restore_stream_states(&mut self, s: [[u64; 4]; 3]) {
        self.dl_rng = SimRng::from_state(s[0]);
        self.seu_rng = SimRng::from_state(s[1]);
        self.col_rng = SimRng::from_state(s[2]);
    }
}

/// The fourth fault class: host crashes. The host process dies at a
/// seeded random simulation time, losing all volatile OS state; whatever
/// configuration download was in flight at that instant is *torn* — a
/// prefix of its frames reached the device, the rest did not.
///
/// Kept separate from [`FaultPlan`] because a crash is not survived by
/// the event loop: it terminates the run, and a harness restarts the
/// system from its last checkpoint (see `vfpga::checkpoint`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPlan {
    /// Seed for the crash stream (independent of [`FaultPlan::seed`]'s
    /// derived streams — crash times use their own derivation tag).
    pub seed: u64,
    /// Poisson rate (crashes per simulated second). Zero disables
    /// crashes entirely.
    pub crash_rate_per_s: f64,
    /// Hard cap on injected crashes, so a run always finishes.
    pub max_crashes: u32,
}

impl CrashPlan {
    /// A plan that never crashes.
    pub fn none() -> Self {
        CrashPlan {
            seed: 0,
            crash_rate_per_s: 0.0,
            max_crashes: 0,
        }
    }
}

impl Default for CrashPlan {
    fn default() -> Self {
        CrashPlan::none()
    }
}

/// Turns a [`CrashPlan`] into a reproducible sequence of absolute crash
/// times. The injector lives in the restart *harness*, outside the
/// simulated system, so its stream survives the crash it injects — each
/// draw advances past the previous crash time, and a restored run is
/// never re-killed at an instant that already fired.
#[derive(Debug)]
pub struct CrashInjector {
    plan: CrashPlan,
    rng: SimRng,
    fired: u32,
    last: u64,
}

impl CrashInjector {
    /// Derivation tag of the crash stream (tags 1–3 are the
    /// [`FaultInjector`] streams).
    pub const STREAM_TAG: u64 = 4;

    /// An injector drawing from derivation stream 4 of `plan.seed`.
    pub fn new(plan: CrashPlan) -> Self {
        CrashInjector {
            plan,
            rng: SimRng::new(plan.seed).derive(Self::STREAM_TAG),
            fired: 0,
            last: 0,
        }
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> &CrashPlan {
        &self.plan
    }

    /// Crashes drawn so far.
    pub fn fired(&self) -> u32 {
        self.fired
    }

    /// Absolute simulation time of the next crash, or `None` when the
    /// rate is zero or the crash budget is spent. Consumes randomness
    /// only when a crash is actually drawn.
    pub fn next_crash_at(&mut self) -> Option<crate::SimTime> {
        if self.plan.crash_rate_per_s <= 0.0 || self.fired >= self.plan.max_crashes {
            return None;
        }
        let gap = FaultInjector::interarrival(&mut self.rng, self.plan.crash_rate_per_s)?;
        self.fired += 1;
        self.last = self.last.saturating_add(gap.as_nanos());
        Some(crate::SimTime(self.last))
    }

    /// Fraction of the in-flight download's frames that reached the
    /// device before the crash cut the stream (uniform in `[0, 1)`).
    pub fn torn_fraction(&mut self) -> f64 {
        self.rng.f64()
    }
}

/// The fifth fault class: whole-device outages. A physical FPGA drops off
/// the shelf — power brownout, PCIe surprise-removal, carrier reboot — and
/// every bit of configuration RAM and flip-flop state on it is lost. After
/// a fixed outage the device returns, blank.
///
/// Like [`CrashPlan`] this is not survived by a single device's event
/// loop: a fleet harness (see `vfpga::fleet`) fails resident tenants over
/// to surviving devices from their last checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceFaultPlan {
    /// Seed for the per-device crash streams. Each device derives its own
    /// sub-stream, so drawing device 0's outages never shifts device 1's.
    pub seed: u64,
    /// Poisson rate (crashes per simulated second) *per device*. Zero
    /// disables device faults entirely.
    pub crash_rate_per_s: f64,
    /// How long a crashed device stays down before rejoining, blank.
    pub outage: SimDuration,
    /// Hard cap on crashes per device, so a run always finishes.
    pub max_crashes: u32,
}

impl DeviceFaultPlan {
    /// A plan under which no device ever fails.
    pub fn none() -> Self {
        DeviceFaultPlan {
            seed: 0,
            crash_rate_per_s: 0.0,
            outage: SimDuration::ZERO,
            max_crashes: 0,
        }
    }

    /// Whether device faults are disabled (rate zero or budget zero).
    pub fn is_zero(&self) -> bool {
        self.crash_rate_per_s <= 0.0 || self.max_crashes == 0
    }
}

impl Default for DeviceFaultPlan {
    fn default() -> Self {
        DeviceFaultPlan::none()
    }
}

/// Turns a [`DeviceFaultPlan`] into reproducible per-device outage
/// windows. Lives in the fleet harness, outside any simulated system, so
/// the streams survive the crashes they describe.
#[derive(Debug)]
pub struct DeviceFaultInjector {
    plan: DeviceFaultPlan,
}

impl DeviceFaultInjector {
    /// Derivation tag of device 0's stream; device `d` draws from tag
    /// `STREAM_TAG_BASE + d`. Tags 1–3 are the [`FaultInjector`] streams
    /// and tag 4 is the [`CrashInjector`] stream, so no device collides
    /// with an existing class.
    pub const STREAM_TAG_BASE: u64 = 5;

    /// An injector over the plan. Constructing it draws nothing.
    pub fn new(plan: DeviceFaultPlan) -> Self {
        DeviceFaultInjector { plan }
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> &DeviceFaultPlan {
        &self.plan
    }

    /// The outage windows of device `device`, as absolute
    /// `[down, rejoin)` pairs, strictly increasing and non-overlapping
    /// (the next crash is drawn after the previous rejoin). A zero-rate
    /// plan returns an empty vec without constructing an RNG, so existing
    /// experiments are byte-identical under a disabled plan.
    pub fn windows(&self, device: u32) -> Vec<(crate::SimTime, crate::SimTime)> {
        if self.plan.is_zero() {
            return Vec::new();
        }
        let mut rng = SimRng::new(self.plan.seed).derive(Self::STREAM_TAG_BASE + u64::from(device));
        let mut at = 0u64;
        let mut out = Vec::with_capacity(self.plan.max_crashes as usize);
        for _ in 0..self.plan.max_crashes {
            let gap = match FaultInjector::interarrival(&mut rng, self.plan.crash_rate_per_s) {
                Some(g) => g,
                None => break,
            };
            at = at.saturating_add(gap.as_nanos());
            let down = crate::SimTime(at);
            at = at.saturating_add(self.plan.outage.as_nanos());
            out.push((down, crate::SimTime(at)));
        }
        out
    }

    /// Whether device `device` is up (not inside any outage window) at
    /// time `at`.
    pub fn up_at(&self, device: u32, at: crate::SimTime) -> bool {
        self.windows(device)
            .iter()
            .all(|&(down, up)| at < down || at >= up)
    }
}

/// Where inside a live-migration window a crash lands. The two-phase
/// protocol (see `vfpga::migrate`) has three distinguishable windows a
/// host or device death can interrupt; journal replay must resolve each
/// one to either a clean rollback or an idempotent completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationCrashWindow {
    /// The source host dies after journaling its `MigrationIntent` but
    /// before the destination journals one: prepare never finished, the
    /// intent-without-commit must be undone (tenant stays on the source).
    SourceMidPrepare,
    /// The destination dies while the prepared image is being copied in:
    /// both sides hold an intent and no commit — undone on both, the
    /// tenant rolls back onto the source with its backlog intact.
    DestMidCopy,
    /// The crash lands after `MigrationCommit` was journaled but before
    /// the source columns were freed: the commit wins, and replay redoes
    /// the source-free idempotently.
    BetweenCommitAndFree,
}

impl MigrationCrashWindow {
    /// Short name for labels and trace output.
    pub fn name(&self) -> &'static str {
        match self {
            MigrationCrashWindow::SourceMidPrepare => "src-mid-prepare",
            MigrationCrashWindow::DestMidCopy => "dest-mid-copy",
            MigrationCrashWindow::BetweenCommitAndFree => "commit-no-free",
        }
    }
}

/// Seeded plan for tenant-grain live migrations driven by the fleet
/// event loop: migration *instants* arrive as a Poisson process, and an
/// optional crash point kills a chosen migration inside a chosen window.
/// Like every other plan here, a zero-rate plan draws nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationPlan {
    /// Seed for the migration-instant stream (independent of every other
    /// fault class — the stream has its own derivation tag).
    pub seed: u64,
    /// Poisson rate (migration attempts per simulated second). Zero
    /// disables live migration entirely.
    pub rate_per_s: f64,
    /// Hard cap on migration attempts, so a run always finishes.
    pub max_migrations: u32,
    /// Copy the prepared image delta-anchored: the destination implants a
    /// ghost of the tenant's resident circuits so their next activation
    /// is priced as a delta reconfiguration instead of a full download
    /// (requires a delta-capable manager; silently full-priced otherwise).
    pub delta_copy: bool,
    /// Crash the `k`-th (0-based) migration attempt inside the given
    /// window. `None` lets every migration run to completion.
    pub crash: Option<(u32, MigrationCrashWindow)>,
}

impl MigrationPlan {
    /// A plan that never migrates.
    pub fn none() -> Self {
        MigrationPlan {
            seed: 0,
            rate_per_s: 0.0,
            max_migrations: 0,
            delta_copy: false,
            crash: None,
        }
    }

    /// Whether live migration is disabled (rate zero or budget zero).
    pub fn is_zero(&self) -> bool {
        self.rate_per_s <= 0.0 || self.max_migrations == 0
    }
}

impl Default for MigrationPlan {
    fn default() -> Self {
        MigrationPlan::none()
    }
}

/// Turns a [`MigrationPlan`] into a reproducible sequence of absolute
/// migration instants. Lives in the fleet harness, outside any simulated
/// system, so the stream survives the crash windows it drives.
#[derive(Debug)]
pub struct MigrationInjector {
    plan: MigrationPlan,
}

impl MigrationInjector {
    /// Derivation tag of the migration-instant stream. Far above the
    /// [`DeviceFaultInjector::STREAM_TAG_BASE`]` + device` tags of any
    /// realistic fleet, so no device stream ever collides with it even
    /// under a shared seed.
    pub const STREAM_TAG: u64 = 1 << 32;

    /// An injector over the plan. Constructing it draws nothing.
    pub fn new(plan: MigrationPlan) -> Self {
        MigrationInjector { plan }
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> &MigrationPlan {
        &self.plan
    }

    /// The absolute migration instants, strictly increasing, capped by
    /// the plan's budget. A zero-rate plan returns an empty vec without
    /// constructing an RNG, so existing experiments are byte-identical
    /// under a disabled plan.
    pub fn instants(&self) -> Vec<crate::SimTime> {
        if self.plan.is_zero() {
            return Vec::new();
        }
        let mut rng = SimRng::new(self.plan.seed).derive(Self::STREAM_TAG);
        let mut at = 0u64;
        let mut out = Vec::with_capacity(self.plan.max_migrations as usize);
        for _ in 0..self.plan.max_migrations {
            let gap = match FaultInjector::interarrival(&mut rng, self.plan.rate_per_s) {
                Some(g) => g,
                None => break,
            };
            at = at.saturating_add(gap.as_nanos());
            out.push(crate::SimTime(at));
        }
        out
    }

    /// The crash window assigned to migration attempt `k`, if the plan
    /// crashes that attempt.
    pub fn crash_window_for(&self, k: u32) -> Option<MigrationCrashWindow> {
        match self.plan.crash {
            Some((kk, w)) if kk == k => Some(w),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            download_corruption: 0.2,
            seu_rate_per_s: 50.0,
            column_failure_rate_per_s: 2.0,
        }
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 20);
        assert!(FaultPlan::none().is_zero());
        for _ in 0..100 {
            assert!(!inj.corrupt_download());
        }
        assert_eq!(inj.next_seu(), None);
        assert_eq!(inj.next_column_failure(), None);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let mut a = FaultInjector::new(plan(42), 20);
        let mut b = FaultInjector::new(plan(42), 20);
        for _ in 0..200 {
            assert_eq!(a.corrupt_download(), b.corrupt_download());
            assert_eq!(a.next_seu(), b.next_seu());
            assert_eq!(a.seu_column(), b.seu_column());
            assert_eq!(a.next_column_failure(), b.next_column_failure());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(plan(1), 20);
        let mut b = FaultInjector::new(plan(2), 20);
        let sa: Vec<_> = (0..50).map(|_| a.next_seu()).collect();
        let sb: Vec<_> = (0..50).map(|_| b.next_seu()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn streams_are_independent() {
        // Draining download randomness must not shift the SEU stream.
        let mut a = FaultInjector::new(plan(7), 20);
        let mut b = FaultInjector::new(plan(7), 20);
        for _ in 0..100 {
            a.corrupt_download();
        }
        for _ in 0..20 {
            assert_eq!(a.next_seu(), b.next_seu());
        }
    }

    #[test]
    fn seu_interarrival_mean_tracks_rate() {
        // 1000 draws at 100 events/s: mean should be ~10 ms (loose bound).
        let mut inj = FaultInjector::new(
            FaultPlan {
                seed: 3,
                seu_rate_per_s: 100.0,
                ..FaultPlan::none()
            },
            20,
        );
        let n = 1000;
        let total: u64 = (0..n).map(|_| inj.next_seu().unwrap().as_nanos()).sum();
        let mean_ms = total as f64 / n as f64 / 1e6;
        assert!(
            (5.0..20.0).contains(&mean_ms),
            "mean interarrival {mean_ms} ms implausible for 100/s"
        );
    }

    #[test]
    fn crash_injector_is_seeded_monotone_and_bounded() {
        let plan = CrashPlan {
            seed: 11,
            crash_rate_per_s: 5.0,
            max_crashes: 3,
        };
        let mut a = CrashInjector::new(plan);
        let mut b = CrashInjector::new(plan);
        let ta: Vec<_> = std::iter::from_fn(|| a.next_crash_at()).collect();
        let tb: Vec<_> = std::iter::from_fn(|| b.next_crash_at()).collect();
        assert_eq!(ta, tb, "same seed, same crash times");
        assert_eq!(ta.len(), 3, "budget caps the sequence");
        assert!(ta.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert_eq!(a.fired(), 3);

        let mut none = CrashInjector::new(CrashPlan::none());
        assert_eq!(none.next_crash_at(), None);
    }

    #[test]
    fn torn_fraction_is_a_unit_fraction() {
        let mut inj = CrashInjector::new(CrashPlan {
            seed: 5,
            crash_rate_per_s: 1.0,
            max_crashes: 10,
        });
        for _ in 0..100 {
            let f = inj.torn_fraction();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fault_stream_states_round_trip() {
        let mut a = FaultInjector::new(plan(42), 20);
        // Advance all three streams, snapshot, advance further, restore.
        for _ in 0..10 {
            a.corrupt_download();
            a.next_seu();
            a.next_column_failure();
        }
        let snap = a.stream_states();
        let expect: Vec<_> = (0..20)
            .map(|_| (a.corrupt_download(), a.next_seu(), a.next_column_failure()))
            .collect();
        a.restore_stream_states(snap);
        let replay: Vec<_> = (0..20)
            .map(|_| (a.corrupt_download(), a.next_seu(), a.next_column_failure()))
            .collect();
        assert_eq!(expect, replay);
    }

    #[test]
    fn device_fault_windows_are_seeded_monotone_and_bounded() {
        let plan = DeviceFaultPlan {
            seed: 21,
            crash_rate_per_s: 40.0,
            outage: SimDuration::from_millis(3),
            max_crashes: 4,
        };
        let inj = DeviceFaultInjector::new(plan);
        let a = inj.windows(0);
        let b = DeviceFaultInjector::new(plan).windows(0);
        assert_eq!(a, b, "same seed, same windows");
        assert_eq!(a.len(), 4, "budget caps the sequence");
        for &(down, up) in &a {
            assert_eq!(up, down + SimDuration::from_millis(3));
        }
        for w in a.windows(2) {
            assert!(w[0].1 <= w[1].0, "next crash drawn after prior rejoin");
        }
        // Down inside a window, up outside it.
        let (down, up) = a[0];
        assert!(!inj.up_at(0, down));
        assert!(inj.up_at(0, up));
    }

    #[test]
    fn device_streams_are_independent_and_zero_plan_draws_nothing() {
        let plan = DeviceFaultPlan {
            seed: 6,
            crash_rate_per_s: 25.0,
            outage: SimDuration::from_millis(1),
            max_crashes: 8,
        };
        let inj = DeviceFaultInjector::new(plan);
        // Each device has its own derived stream: distinct sequences, and
        // querying one device never perturbs another.
        let d0 = inj.windows(0);
        let d1 = inj.windows(1);
        assert_ne!(d0, d1);
        assert_eq!(inj.windows(0), d0);

        let none = DeviceFaultInjector::new(DeviceFaultPlan::none());
        assert!(DeviceFaultPlan::none().is_zero());
        assert!(none.windows(0).is_empty());
        assert!(none.up_at(0, crate::SimTime(12345)));
    }

    #[test]
    fn migration_instants_are_seeded_monotone_and_bounded() {
        let plan = MigrationPlan {
            seed: 17,
            rate_per_s: 200.0,
            max_migrations: 5,
            delta_copy: false,
            crash: None,
        };
        let inj = MigrationInjector::new(plan);
        let a = inj.instants();
        let b = MigrationInjector::new(plan).instants();
        assert_eq!(a, b, "same seed, same instants");
        assert_eq!(a.len(), 5, "budget caps the sequence");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert_eq!(inj.crash_window_for(0), None);

        let none = MigrationInjector::new(MigrationPlan::none());
        assert!(MigrationPlan::none().is_zero());
        assert!(none.instants().is_empty());
    }

    #[test]
    fn migration_crash_targets_exactly_one_attempt() {
        let plan = MigrationPlan {
            seed: 17,
            rate_per_s: 200.0,
            max_migrations: 5,
            delta_copy: true,
            crash: Some((2, MigrationCrashWindow::DestMidCopy)),
        };
        let inj = MigrationInjector::new(plan);
        for k in 0..5 {
            let w = inj.crash_window_for(k);
            if k == 2 {
                assert_eq!(w, Some(MigrationCrashWindow::DestMidCopy));
            } else {
                assert_eq!(w, None);
            }
        }
        // The crash knob must not perturb the instant stream itself.
        let clean = MigrationInjector::new(MigrationPlan {
            crash: None,
            ..plan
        });
        assert_eq!(inj.instants(), clean.instants());
    }

    #[test]
    fn columns_stay_in_range() {
        let mut inj = FaultInjector::new(plan(9), 13);
        for _ in 0..500 {
            assert!(inj.seu_column() < 13);
            assert!(inj.failed_column() < 13);
        }
    }
}
