//! Property-based tests for the simulation kernel.

use fsim::{EventQueue, Histogram, SimDuration, SimRng, SimTime, Summary};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order, FIFO on ties.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.at >= lt);
                if ev.at == lt {
                    prop_assert!(ev.event > li, "FIFO tie-break violated");
                }
            }
            last = Some((ev.at, ev.event));
        }
    }

    /// below(n) is always < n; range_u64 is always within bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000, lo in 0u64..500, span in 0u64..500) {
        let mut r = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
            let v = r.range_u64(lo, lo + span);
            prop_assert!((lo..=lo + span).contains(&v));
        }
    }

    /// Derived streams are reproducible functions of (seed, tag).
    #[test]
    fn rng_derive_deterministic(seed in any::<u64>(), tag in any::<u64>()) {
        let root = SimRng::new(seed);
        let mut a = root.derive(tag);
        let mut b = root.derive(tag);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Summary statistics match naive computation.
    #[test]
    fn summary_matches_naive(xs in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
        let mut s = Summary::new();
        for &x in &xs { s.add(x); }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var));
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Histogram quantiles are monotone in q and bounded by the range.
    #[test]
    fn histogram_quantiles_monotone(xs in proptest::collection::vec(0.0f64..100.0, 1..200)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &xs { h.add(x); }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let vals: Vec<f64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        prop_assert!(vals[0] >= 0.0 && vals[6] <= 100.0);
    }

    /// Saturating duration arithmetic never panics and preserves ordering.
    #[test]
    fn duration_arithmetic_sane(a in any::<u64>(), b in any::<u64>()) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        let sum = da + db;
        prop_assert!(sum >= da && sum >= db);
        let diff = da.saturating_sub(db);
        prop_assert!(diff <= da);
    }
}
