//! Property-style tests for the simulation kernel.
//!
//! The container has no third-party crates, so instead of `proptest` these
//! tests drive the same invariants with a deterministic seed sweep: every
//! case derives its inputs from [`SimRng`], so failures are reproducible
//! by seed.

use fsim::{EventQueue, Histogram, SimDuration, SimRng, SimTime, Summary};

const SEEDS: u64 = 64;

/// Events always pop in nondecreasing time order, FIFO on ties.
#[test]
fn event_queue_total_order() {
    for seed in 0..SEEDS {
        let mut rng = SimRng::new(seed);
        let n = 1 + rng.below(200) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime(rng.below(1000)), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(ev.at >= lt, "seed {seed}: time went backwards");
                if ev.at == lt {
                    assert!(ev.event > li, "seed {seed}: FIFO tie-break violated");
                }
            }
            last = Some((ev.at, ev.event));
        }
    }
}

/// below(n) is always < n; range_u64 is always within bounds.
#[test]
fn rng_bounds() {
    for seed in 0..SEEDS {
        let mut meta = SimRng::new(seed ^ 0xB07);
        let bound = 1 + meta.below(1_000_000);
        let lo = meta.below(500);
        let span = meta.below(500);
        let mut r = SimRng::new(seed);
        for _ in 0..100 {
            assert!(r.below(bound) < bound, "seed {seed}");
            let v = r.range_u64(lo, lo + span);
            assert!((lo..=lo + span).contains(&v), "seed {seed}");
        }
    }
}

/// Derived streams are reproducible functions of (seed, tag).
#[test]
fn rng_derive_deterministic() {
    for seed in 0..SEEDS {
        let mut meta = SimRng::new(seed.wrapping_mul(0x9E37_79B9));
        let tag = meta.next_u64();
        let root = SimRng::new(seed);
        let mut a = root.derive(tag);
        let mut b = root.derive(tag);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed} tag {tag}");
        }
    }
}

/// Summary statistics match naive computation.
#[test]
fn summary_matches_naive() {
    for seed in 0..SEEDS {
        let mut rng = SimRng::new(seed);
        let n = 1 + rng.below(100) as usize;
        let xs: Vec<f64> = (0..n)
            .map(|_| (rng.next_u64() as f64 / u64::MAX as f64 - 0.5) * 2e9)
            .collect();
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        let nf = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / nf;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / nf;
        assert!(
            (s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()),
            "seed {seed}"
        );
        assert!(
            (s.variance() - var).abs() <= 1e-4 * (1.0 + var),
            "seed {seed}"
        );
        assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(
            s.max(),
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        );
    }
}

/// Histogram quantiles are monotone in q and bounded by the range.
#[test]
fn histogram_quantiles_monotone() {
    for seed in 0..SEEDS {
        let mut rng = SimRng::new(seed);
        let n = 1 + rng.below(200) as usize;
        let mut h = Histogram::new(0.0, 100.0, 20);
        for _ in 0..n {
            h.add(rng.next_u64() as f64 / u64::MAX as f64 * 100.0);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let vals: Vec<f64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in vals.windows(2) {
            assert!(
                w[0] <= w[1] + 1e-9,
                "seed {seed}: quantiles not monotone {vals:?}"
            );
        }
        assert!(vals[0] >= 0.0 && vals[6] <= 100.0, "seed {seed}");
    }
}

/// Saturating duration arithmetic never panics and preserves ordering.
#[test]
fn duration_arithmetic_sane() {
    let mut rng = SimRng::new(0xD00D);
    for _ in 0..256 {
        // Bias toward huge values to exercise saturation.
        let a = rng.next_u64() | (rng.next_u64() & 0xFFFF_0000_0000_0000);
        let b = rng.next_u64();
        let da = SimDuration::from_nanos(a / 2);
        let db = SimDuration::from_nanos(b / 2);
        let sum = da + db;
        assert!(sum >= da && sum >= db);
        let diff = da.saturating_sub(db);
        assert!(diff <= da);
    }
}
