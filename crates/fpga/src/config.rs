//! Configuration-port timing model.
//!
//! The paper's feasibility arguments all reduce to configuration time:
//! "in the Xilinx X4000 FPGAs, the configuration can be downloaded only
//! serially and completely in no more than 200 ms", and partial
//! reconfigurability is what makes *frequent* reprogramming practical.
//! This module encodes that arithmetic: bits per CLB/IOB, per-frame
//! addressing overhead, port bit rates, and read-modify-write penalties
//! for frames that cover only part of a column.

use crate::bitstream::Bitstream;
use crate::device::DeviceSpec;
use fsim::SimDuration;

/// Configuration bits per CLB (LUT table + input routing + FF mode),
/// including this CLB's share of the interconnect configuration.
pub const BITS_PER_CLB: u64 = 400;
/// Configuration bits per I/O block.
pub const BITS_PER_IOB: u64 = 64;
/// Fixed stream header (sync word, device id, commands).
pub const HEADER_BITS: u64 = 160;
/// Addressing overhead per partial frame (frame address register write).
pub const FRAME_ADDR_BITS: u64 = 40;

/// How the configuration RAM is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigPort {
    /// Slow serial port (XC4000-style CCLK at conservative speed):
    /// the paper's "≈ 200 ms for a full device" operating point.
    SerialSlow,
    /// Fast serial port (aggressive CCLK).
    SerialFast,
    /// Byte-wide parallel (Express-style) port.
    Parallel8,
}

impl ConfigPort {
    /// Port throughput in configuration bits per second.
    pub fn bits_per_sec(self) -> u64 {
        match self {
            ConfigPort::SerialSlow => 2_000_000,
            ConfigPort::SerialFast => 8_000_000,
            ConfigPort::Parallel8 => 64_000_000,
        }
    }

    /// Whether the port supports frame-addressed (partial) writes. The
    /// slow serial port only performs whole-device loads — the paper's
    /// "downloaded only serially and completely" case.
    pub fn supports_partial(self) -> bool {
        !matches!(self, ConfigPort::SerialSlow)
    }
}

/// Timing calculator binding a device to a port.
#[derive(Debug, Clone, Copy)]
pub struct ConfigTiming {
    /// The device geometry.
    pub spec: DeviceSpec,
    /// The configuration port in use.
    pub port: ConfigPort,
}

impl ConfigTiming {
    /// Bits in one full-column configuration frame.
    pub fn frame_bits(&self) -> u64 {
        self.spec.rows as u64 * BITS_PER_CLB
    }

    /// Total bits of a full-device configuration.
    pub fn full_bits(&self) -> u64 {
        HEADER_BITS
            + self.spec.cols as u64 * self.frame_bits()
            + self.spec.io_pins as u64 * BITS_PER_IOB
    }

    fn dur_for_bits(&self, bits: u64) -> SimDuration {
        let ns = bits.saturating_mul(1_000_000_000) / self.port.bits_per_sec();
        SimDuration::from_nanos(ns)
    }

    /// Time for a full-device configuration download.
    pub fn full_config_time(&self) -> SimDuration {
        self.dur_for_bits(self.full_bits())
    }

    /// Time to download a specific bitstream.
    ///
    /// * full streams cost [`ConfigTiming::full_config_time`] regardless
    ///   of content (the stream carries every frame);
    /// * partial streams cost header + per-frame (address + data), with
    ///   frames that cover only part of a column charged a read-modify-
    ///   write (the device must read the frame back, merge, and rewrite —
    ///   ×2 on the data movement);
    /// * IOB writes are charged per touched IOB.
    pub fn download_time(&self, bs: &Bitstream) -> SimDuration {
        if bs.full {
            return self.full_config_time();
        }
        let mut bits = HEADER_BITS;
        for f in &bs.frames {
            let covers_column = f.row0 == 0 && f.cells.len() as u32 >= self.spec.rows;
            let data = self.frame_bits();
            bits += FRAME_ADDR_BITS + if covers_column { data } else { 2 * data };
        }
        bits += bs.iobs.len() as u64 * BITS_PER_IOB;
        self.dur_for_bits(bits)
    }

    /// Time to read back the flip-flop state of `n_frames` columns
    /// (readback moves whole frames, like configuration, plus addressing).
    pub fn readback_time(&self, n_frames: usize) -> SimDuration {
        let bits = HEADER_BITS + n_frames as u64 * (FRAME_ADDR_BITS + self.frame_bits());
        self.dur_for_bits(bits)
    }

    /// Time to write flip-flop state back into `n_frames` columns.
    pub fn state_write_time(&self, n_frames: usize) -> SimDuration {
        // Same movement cost as readback.
        self.readback_time(n_frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::{ClbCell, ClbSource, FrameWrite};
    use crate::device::PARTS;

    fn part(name: &str) -> DeviceSpec {
        *PARTS.iter().find(|p| p.name == name).unwrap()
    }

    #[test]
    fn flagship_full_serial_config_is_about_200ms() {
        // The paper's anchor: the largest X4000 takes "no more than 200 ms"
        // over the slow serial port.
        let t = ConfigTiming {
            spec: part("VF800"),
            port: ConfigPort::SerialSlow,
        };
        let ms = t.full_config_time().as_millis_f64();
        assert!(
            (160.0..240.0).contains(&ms),
            "flagship serial config {ms} ms should be ≈ 200 ms"
        );
    }

    #[test]
    fn small_part_configures_much_faster() {
        let small = ConfigTiming {
            spec: part("VF100"),
            port: ConfigPort::SerialSlow,
        };
        let big = ConfigTiming {
            spec: part("VF800"),
            port: ConfigPort::SerialSlow,
        };
        assert!(small.full_config_time().as_nanos() * 5 < big.full_config_time().as_nanos());
    }

    #[test]
    fn partial_beats_full_when_touching_few_frames() {
        let spec = part("VF800");
        let t = ConfigTiming {
            spec,
            port: ConfigPort::SerialFast,
        };
        let cell = ClbCell::comb(0, [ClbSource::None; 4]);
        // 4 full-column frames out of 32.
        let frames = (0..4)
            .map(|c| FrameWrite {
                col: c,
                row0: 0,
                cells: vec![Some(cell); spec.rows as usize],
            })
            .collect();
        let partial = Bitstream::new("p", frames, vec![], false);
        let dl = t.download_time(&partial);
        let full = t.full_config_time();
        assert!(
            dl.as_nanos() * 5 < full.as_nanos(),
            "4/32 frames must be ≫ 5x cheaper: {} vs {}",
            dl.as_nanos(),
            full.as_nanos()
        );
    }

    #[test]
    fn partial_column_pays_read_modify_write() {
        let spec = part("VF800");
        let t = ConfigTiming {
            spec,
            port: ConfigPort::SerialFast,
        };
        let cell = ClbCell::comb(0, [ClbSource::None; 4]);
        let full_col = Bitstream::new(
            "f",
            vec![FrameWrite {
                col: 0,
                row0: 0,
                cells: vec![Some(cell); spec.rows as usize],
            }],
            vec![],
            false,
        );
        let half_col = Bitstream::new(
            "h",
            vec![FrameWrite {
                col: 0,
                row0: 0,
                cells: vec![Some(cell); spec.rows as usize / 2],
            }],
            vec![],
            false,
        );
        assert!(
            t.download_time(&half_col) > t.download_time(&full_col),
            "read-modify-write must cost more than a clean frame write"
        );
    }

    #[test]
    fn full_streams_cost_full_time_regardless_of_content() {
        let spec = part("VF400");
        let t = ConfigTiming {
            spec,
            port: ConfigPort::SerialSlow,
        };
        let empty_full = Bitstream::new("e", vec![], vec![], true);
        assert_eq!(t.download_time(&empty_full), t.full_config_time());
    }

    #[test]
    fn port_rates_order() {
        assert!(ConfigPort::SerialSlow.bits_per_sec() < ConfigPort::SerialFast.bits_per_sec());
        assert!(ConfigPort::SerialFast.bits_per_sec() < ConfigPort::Parallel8.bits_per_sec());
        assert!(!ConfigPort::SerialSlow.supports_partial());
        assert!(ConfigPort::SerialFast.supports_partial());
    }

    #[test]
    fn readback_scales_with_frames() {
        let t = ConfigTiming {
            spec: part("VF400"),
            port: ConfigPort::SerialFast,
        };
        let one = t.readback_time(1).as_nanos();
        let ten = t.readback_time(10).as_nanos();
        assert!(ten > 8 * one && ten < 11 * one);
    }
}
