//! Rectangular CLB-region algebra.
//!
//! Partitions, overlay areas, segments, and pages are all rectangular
//! regions of the CLB array. The partition manager needs exact splitting,
//! merging, and adjacency tests; the configuration-cost model needs the
//! set of *frame columns* a region touches (configuration frames span full
//! device columns, as on real symmetrical-array parts, which is why
//! column-aligned partitions reconfigure cheaper — the paper's §4
//! observation that partition position constrains implementations).

/// A rectangle of CLBs: columns `[col, col+w)`, rows `[row, row+h)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Leftmost column.
    pub col: u32,
    /// Topmost row.
    pub row: u32,
    /// Width in columns (> 0).
    pub w: u32,
    /// Height in rows (> 0).
    pub h: u32,
}

impl Rect {
    /// Construct a rectangle; zero-sized rectangles are programming errors.
    pub fn new(col: u32, row: u32, w: u32, h: u32) -> Rect {
        assert!(w > 0 && h > 0, "zero-sized region");
        Rect { col, row, w, h }
    }

    /// Number of CLBs covered.
    #[inline]
    pub fn area(&self) -> u32 {
        self.w * self.h
    }

    /// Exclusive right edge.
    #[inline]
    pub fn col_end(&self) -> u32 {
        self.col + self.w
    }

    /// Exclusive bottom edge.
    #[inline]
    pub fn row_end(&self) -> u32 {
        self.row + self.h
    }

    /// Whether `(c, r)` lies inside.
    #[inline]
    pub fn contains(&self, c: u32, r: u32) -> bool {
        c >= self.col && c < self.col_end() && r >= self.row && r < self.row_end()
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.col >= self.col
            && other.col_end() <= self.col_end()
            && other.row >= self.row
            && other.row_end() <= self.row_end()
    }

    /// Whether the two rectangles share any CLB.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.col < other.col_end()
            && other.col < self.col_end()
            && self.row < other.row_end()
            && other.row < self.row_end()
    }

    /// The columns this region touches — i.e. the configuration frames a
    /// (partial) reconfiguration of this region must write.
    pub fn columns(&self) -> impl Iterator<Item = u32> + '_ {
        self.col..self.col_end()
    }

    /// Iterate all `(col, row)` cells, row-major.
    pub fn cells(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let me = *self;
        (me.row..me.row_end()).flat_map(move |r| (me.col..me.col_end()).map(move |c| (c, r)))
    }

    /// Split vertically at absolute column `at` (must be strictly inside),
    /// returning `(left, right)`.
    pub fn split_at_col(&self, at: u32) -> (Rect, Rect) {
        assert!(
            at > self.col && at < self.col_end(),
            "split column outside region"
        );
        (
            Rect::new(self.col, self.row, at - self.col, self.h),
            Rect::new(at, self.row, self.col_end() - at, self.h),
        )
    }

    /// Split horizontally at absolute row `at` (must be strictly inside),
    /// returning `(top, bottom)`.
    pub fn split_at_row(&self, at: u32) -> (Rect, Rect) {
        assert!(
            at > self.row && at < self.row_end(),
            "split row outside region"
        );
        (
            Rect::new(self.col, self.row, self.w, at - self.row),
            Rect::new(self.col, at, self.w, self.row_end() - at),
        )
    }

    /// If the two rectangles tile a larger rectangle (share a full edge),
    /// return the merged rectangle — the partition garbage collector's
    /// coalescing primitive.
    pub fn merge(&self, other: &Rect) -> Option<Rect> {
        // Horizontally adjacent, same rows.
        if self.row == other.row && self.h == other.h {
            if self.col_end() == other.col {
                return Some(Rect::new(self.col, self.row, self.w + other.w, self.h));
            }
            if other.col_end() == self.col {
                return Some(Rect::new(other.col, self.row, self.w + other.w, self.h));
            }
        }
        // Vertically adjacent, same columns.
        if self.col == other.col && self.w == other.w {
            if self.row_end() == other.row {
                return Some(Rect::new(self.col, self.row, self.w, self.h + other.h));
            }
            if other.row_end() == self.row {
                return Some(Rect::new(self.col, other.row, self.w, self.h + other.h));
            }
        }
        None
    }

    /// Translate by `(dc, dr)` — the relocation primitive. Returns `None`
    /// on coordinate underflow.
    pub fn translated(&self, dc: i32, dr: i32) -> Option<Rect> {
        let col = self.col as i64 + dc as i64;
        let row = self.row as i64 + dr as i64;
        if col < 0 || row < 0 || col > u32::MAX as i64 || row > u32::MAX as i64 {
            return None;
        }
        Some(Rect::new(col as u32, row as u32, self.w, self.h))
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}..{})x[{}..{})",
            self.col,
            self.col_end(),
            self.row,
            self.row_end()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_edges() {
        let r = Rect::new(2, 3, 4, 5);
        assert_eq!(r.area(), 20);
        assert_eq!(r.col_end(), 6);
        assert_eq!(r.row_end(), 8);
        assert!(r.contains(2, 3));
        assert!(r.contains(5, 7));
        assert!(!r.contains(6, 3));
        assert!(!r.contains(2, 8));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 0, 4, 4);
        assert!(a.intersects(&Rect::new(3, 3, 2, 2)));
        assert!(
            !a.intersects(&Rect::new(4, 0, 2, 2)),
            "edge-adjacent is disjoint"
        );
        assert!(!a.intersects(&Rect::new(0, 4, 2, 2)));
        assert!(a.intersects(&a));
    }

    #[test]
    fn containment() {
        let big = Rect::new(0, 0, 10, 10);
        assert!(big.contains_rect(&Rect::new(2, 2, 3, 3)));
        assert!(big.contains_rect(&big));
        assert!(!big.contains_rect(&Rect::new(8, 8, 3, 3)));
    }

    #[test]
    fn splits_partition_exactly() {
        let r = Rect::new(2, 2, 6, 4);
        let (l, rr) = r.split_at_col(5);
        assert_eq!(l, Rect::new(2, 2, 3, 4));
        assert_eq!(rr, Rect::new(5, 2, 3, 4));
        assert_eq!(l.area() + rr.area(), r.area());
        assert!(!l.intersects(&rr));

        let (t, bt) = r.split_at_row(4);
        assert_eq!(t, Rect::new(2, 2, 6, 2));
        assert_eq!(bt, Rect::new(2, 4, 6, 2));
    }

    #[test]
    #[should_panic(expected = "split column outside region")]
    fn bad_split_panics() {
        Rect::new(0, 0, 4, 4).split_at_col(0);
    }

    #[test]
    fn merge_is_inverse_of_split() {
        let r = Rect::new(1, 1, 8, 6);
        let (a, b) = r.split_at_col(4);
        assert_eq!(a.merge(&b), Some(r));
        assert_eq!(b.merge(&a), Some(r));
        let (t, bt) = r.split_at_row(3);
        assert_eq!(t.merge(&bt), Some(r));
        assert_eq!(bt.merge(&t), Some(r));
    }

    #[test]
    fn merge_rejects_non_tiling() {
        let a = Rect::new(0, 0, 2, 2);
        assert_eq!(a.merge(&Rect::new(2, 0, 2, 3)), None, "height mismatch");
        assert_eq!(a.merge(&Rect::new(3, 0, 2, 2)), None, "gap");
        assert_eq!(a.merge(&Rect::new(2, 1, 2, 2)), None, "row offset");
    }

    #[test]
    fn columns_and_cells() {
        let r = Rect::new(3, 1, 2, 2);
        let cols: Vec<u32> = r.columns().collect();
        assert_eq!(cols, vec![3, 4]);
        let cells: Vec<(u32, u32)> = r.cells().collect();
        assert_eq!(cells, vec![(3, 1), (4, 1), (3, 2), (4, 2)]);
    }

    #[test]
    fn translation() {
        let r = Rect::new(2, 2, 3, 3);
        assert_eq!(r.translated(4, -1), Some(Rect::new(6, 1, 3, 3)));
        assert_eq!(r.translated(-3, 0), None, "underflow");
    }
}
