//! Write-ahead journal for configuration downloads.
//!
//! A host crash can cut a configuration download mid-stream, leaving a
//! *torn write*: a prefix of the stream's frames in configuration RAM and
//! the rest absent — a state no CRC protects, because the stream itself
//! was valid. The journal makes every [`Device::apply`] a transaction:
//!
//! 1. [`Journal::begin`] captures the **pre-image** of everything the
//!    stream will touch (the covered frames' cells and flip-flops plus
//!    the touched IOBs; for a full stream, the whole device — a full
//!    download wipes everything) and retains the stream itself as the
//!    **after-image**;
//! 2. the caller applies the stream to the device as usual;
//! 3. [`Journal::commit`] marks the transaction durable.
//!
//! After a crash, [`Journal::recover`] restores a consistent device:
//! transactions that never committed are **undone** (pre-image restored,
//! newest first), then committed transactions are **redone** (after-image
//! re-applied, oldest first — idempotent, since [`Device::apply`] is a
//! plain store). [`Journal::truncate_committed`] drops records a
//! checkpoint has made durable, bounding replay work.

use crate::bitstream::{Bitstream, ClbCell, IobConfig};
use crate::device::{Device, DeviceError};
use fsim::SimDuration;
use std::sync::Arc;

/// Handle to one journaled download.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnId(u64);

/// Pre-image of one frame's span: the cells and flip-flop words the
/// incoming stream will overwrite.
#[derive(Debug, Clone)]
struct FramePre {
    col: u32,
    row0: u32,
    cells: Vec<Option<ClbCell>>,
    ff: Vec<u64>,
}

/// What [`Journal::begin`] captured for undo.
#[derive(Debug, Clone)]
enum PreImage {
    /// Partial stream: only the covered frames and touched IOBs.
    Frames {
        frames: Vec<FramePre>,
        iobs: Vec<(u32, IobConfig)>,
    },
    /// Full stream: the whole device (a full download wipes everything,
    /// so undo must restore everything).
    Whole {
        cells: Vec<(u32, u32, Option<ClbCell>)>,
        iobs: Vec<(u32, IobConfig)>,
        ff: Vec<(u32, u32, u64)>,
    },
}

#[derive(Debug, Clone)]
struct Txn {
    id: u64,
    /// After-image, shared with the caller — retaining a record must not
    /// deep-copy frame vectors.
    bs: Arc<Bitstream>,
    pre: PreImage,
    committed: bool,
}

/// What a [`Journal::recover`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Committed transactions re-applied (redo).
    pub redone: u32,
    /// Uncommitted (torn) transactions rolled back (undo).
    pub undone: u32,
    /// Port time the replay cost (frame traffic for undo pre-images plus
    /// the re-applied streams' download times).
    pub time: SimDuration,
}

/// The write-ahead journal guarding one [`Device`].
#[derive(Debug, Default)]
pub struct Journal {
    next_id: u64,
    txns: Vec<Txn>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Open a transaction for `bs`: capture the pre-image of everything
    /// the stream will overwrite. Call *before* [`Device::apply`]. The
    /// journal keeps a reference to the shared stream as the after-image
    /// rather than a deep copy.
    pub fn begin(&mut self, dev: &Device, bs: &Arc<Bitstream>) -> TxnId {
        let spec = dev.spec();
        let pre = if bs.full {
            let mut cells = Vec::new();
            let mut ff = Vec::new();
            for row in 0..spec.rows {
                for col in 0..spec.cols {
                    cells.push((col, row, dev.cell(col, row)));
                    ff.push((col, row, dev.ff_word(col, row)));
                }
            }
            let iobs = (0..spec.io_pins).map(|p| (p, dev.iob(p))).collect();
            PreImage::Whole { cells, iobs, ff }
        } else {
            let frames = bs
                .frames
                .iter()
                .map(|f| FramePre {
                    col: f.col,
                    row0: f.row0,
                    cells: (0..f.cells.len() as u32)
                        .map(|k| dev.cell(f.col, f.row0 + k))
                        .collect(),
                    ff: (0..f.cells.len() as u32)
                        .map(|k| dev.ff_word(f.col, f.row0 + k))
                        .collect(),
                })
                .collect();
            let iobs = bs.iobs.iter().map(|&(p, _)| (p, dev.iob(p))).collect();
            PreImage::Frames { frames, iobs }
        };
        let id = self.next_id;
        self.next_id += 1;
        self.txns.push(Txn {
            id,
            bs: Arc::clone(bs),
            pre,
            committed: false,
        });
        TxnId(id)
    }

    /// Mark a transaction durable (the download completed).
    pub fn commit(&mut self, id: TxnId) {
        if let Some(t) = self.txns.iter_mut().find(|t| t.id == id.0) {
            t.committed = true;
        }
    }

    /// Records still in the journal.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Open (uncommitted) transactions — nonzero after a crash means a
    /// torn write is on the device.
    pub fn open_txns(&self) -> usize {
        self.txns.iter().filter(|t| !t.committed).count()
    }

    /// Drop committed records (a checkpoint has made them durable);
    /// open transactions are kept — they still need undo on recovery.
    pub fn truncate_committed(&mut self) {
        self.txns.retain(|t| !t.committed);
    }

    /// Crash recovery: undo torn transactions (newest first), then redo
    /// committed ones (oldest first). Leaves the journal holding only the
    /// committed records, with the device in the state those records
    /// describe.
    pub fn recover(&mut self, dev: &mut Device) -> Result<RecoveryOutcome, DeviceError> {
        let mut out = RecoveryOutcome::default();
        let timing = dev.timing();
        for t in self.txns.iter().rev().filter(|t| !t.committed) {
            match &t.pre {
                PreImage::Frames { frames, iobs } => {
                    let mut n = 0usize;
                    for fp in frames {
                        for (k, (&cell, &word)) in fp.cells.iter().zip(&fp.ff).enumerate() {
                            let row = fp.row0 + k as u32;
                            dev.set_cell(fp.col, row, cell);
                            dev.set_ff_word(fp.col, row, word);
                        }
                        n += 1;
                    }
                    for &(pin, cfg) in iobs {
                        dev.set_iob(pin, cfg);
                    }
                    out.time += timing.readback_time(n);
                }
                PreImage::Whole { cells, iobs, ff } => {
                    for &(col, row, cell) in cells {
                        dev.set_cell(col, row, cell);
                    }
                    for &(col, row, word) in ff {
                        dev.set_ff_word(col, row, word);
                    }
                    for &(pin, cfg) in iobs {
                        dev.set_iob(pin, cfg);
                    }
                    out.time += timing.full_config_time();
                }
            }
            out.undone += 1;
        }
        for t in self.txns.iter().filter(|t| t.committed) {
            out.time += dev.apply(&t.bs)?;
            out.redone += 1;
        }
        self.txns.retain(|t| t.committed);
        Ok(out)
    }
}

/// Phase of one live tenant migration, journaled on durable storage of
/// *both* the source and destination hosts. The protocol is two-phase:
///
/// 1. **Intent** — the destination region is reserved and the tenant's
///    image snapshotted; nothing irreversible has happened yet.
/// 2. **Commit** — placement flipped to the destination; the source must
///    still free the tenant's exclusive residency claims.
/// 3. **Freed** — the source released the claims; the migration is done.
///
/// **Aborted** closes an attempt that never committed (rollback onto the
/// source). Crash recovery resolves every prefix of this sequence: an
/// intent without a commit is undone, a commit without a freed record is
/// redone (idempotently), and anything ending in `Freed`/`Aborted` needs
/// no action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Prepare completed: destination reserved, image snapshotted.
    Intent,
    /// Placement flipped to the destination.
    Commit,
    /// Source-side claims released; the attempt is fully done.
    Freed,
    /// The attempt rolled back onto the source before committing.
    Aborted,
}

/// One journaled migration phase transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Monotone record number within the log.
    pub seq: u64,
    /// Tenant being migrated.
    pub tenant: u32,
    /// Source device.
    pub from_device: u32,
    /// Destination device.
    pub to_device: u32,
    /// Which phase this record marks durable.
    pub phase: MigrationPhase,
}

/// What journal replay must do about one tenant's latest migration
/// attempt after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationResolution {
    /// The attempt finished (`Freed`) or was closed (`Aborted`); replay
    /// does nothing.
    Resolved,
    /// Intent without commit: the crash struck inside the prepare window.
    /// Undo — the tenant stays on the source with its backlog intact.
    RollBack,
    /// Commit without freed: the crash struck between the placement flip
    /// and the source-side free. Redo the free; it is idempotent, so a
    /// replay that races an already-completed free is harmless.
    RedoFree,
}

/// Durable log of [`MigrationRecord`]s for one host, the migration
/// counterpart of the download [`Journal`]. Unlike the download journal it
/// carries no images — the checkpoint path owns those — only the phase
/// markers recovery needs to decide undo vs redo.
#[derive(Debug, Default, Clone)]
pub struct MigrationLog {
    next_seq: u64,
    records: Vec<MigrationRecord>,
}

impl MigrationLog {
    /// An empty log.
    pub fn new() -> Self {
        MigrationLog::default()
    }

    /// Append a phase record; returns its sequence number.
    pub fn record(&mut self, tenant: u32, from: u32, to: u32, phase: MigrationPhase) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.push(MigrationRecord {
            seq,
            tenant,
            from_device: from,
            to_device: to,
            phase,
        });
        seq
    }

    /// Records in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[MigrationRecord] {
        &self.records
    }

    /// Crash recovery: for every tenant with at least one record, classify
    /// the *latest* attempt. Returns `(record, resolution)` pairs ordered
    /// by tenant id — the record is the newest one of that tenant, which
    /// identifies the source/destination pair the resolution applies to.
    pub fn resolve(&self) -> Vec<(MigrationRecord, MigrationResolution)> {
        let mut latest: std::collections::BTreeMap<u32, MigrationRecord> =
            std::collections::BTreeMap::new();
        for r in &self.records {
            latest.insert(r.tenant, *r);
        }
        latest
            .into_values()
            .map(|r| {
                let res = match r.phase {
                    MigrationPhase::Intent => MigrationResolution::RollBack,
                    MigrationPhase::Commit => MigrationResolution::RedoFree,
                    MigrationPhase::Freed | MigrationPhase::Aborted => {
                        MigrationResolution::Resolved
                    }
                };
                (r, res)
            })
            .collect()
    }

    /// Drop attempts that need no recovery action (latest phase `Freed` or
    /// `Aborted`), bounding replay work the way
    /// [`Journal::truncate_committed`] does for downloads.
    pub fn truncate_resolved(&mut self) {
        let open: Vec<u32> = self
            .resolve()
            .into_iter()
            .filter(|(_, res)| *res != MigrationResolution::Resolved)
            .map(|(r, _)| r.tenant)
            .collect();
        self.records.retain(|r| open.contains(&r.tenant));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::{ClbSource, FrameWrite};
    use crate::config::ConfigPort;
    use crate::device::part;

    fn stream(label: &str, col: u32, rows: usize, full: bool) -> Bitstream {
        let cell = ClbCell::registered(
            0b01,
            [
                ClbSource::Pin(0),
                ClbSource::None,
                ClbSource::None,
                ClbSource::None,
            ],
            true,
        );
        Bitstream::new(
            label,
            vec![FrameWrite {
                col,
                row0: 0,
                cells: vec![Some(cell); rows],
            }],
            vec![(0, IobConfig::Input), (1, IobConfig::Output(col, 0))],
            full,
        )
    }

    #[test]
    fn torn_partial_write_is_undone_exactly() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        d.apply(&stream("base", 0, 4, false)).unwrap();
        let before = format!("{d:?}");

        let mut j = Journal::new();
        let incoming = Arc::new(stream("incoming", 0, 8, false));
        j.begin(&d, &incoming);
        // Crash: only a prefix of the frames landed, never committed.
        d.apply_torn(&incoming, 1).unwrap();
        assert_ne!(format!("{d:?}"), before, "torn write visibly corrupts");

        let out = j.recover(&mut d).unwrap();
        assert_eq!((out.redone, out.undone), (0, 1));
        assert!(out.time.as_nanos() > 0, "undo costs frame traffic");
        assert_eq!(format!("{d:?}"), before, "pre-image restored exactly");
        assert!(j.is_empty());
    }

    #[test]
    fn torn_full_stream_restores_the_wiped_device() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        d.apply(&stream("base", 3, 5, false)).unwrap();
        let before = format!("{d:?}");

        let mut j = Journal::new();
        let full = Arc::new(stream("full", 0, 10, true));
        j.begin(&d, &full);
        d.apply_torn(&full, 0).unwrap(); // wiped, nothing written
        assert_eq!(d.used_clbs(), 0, "full torn write wiped the device");

        j.recover(&mut d).unwrap();
        assert_eq!(format!("{d:?}"), before);
    }

    #[test]
    fn committed_transactions_are_redone_in_order() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        let mut j = Journal::new();

        let a = Arc::new(stream("a", 0, 4, false));
        let ta = j.begin(&d, &a);
        d.apply(&a).unwrap();
        j.commit(ta);

        // Overlapping second write, also committed: redo must preserve
        // write order so the later stream wins.
        let b = Arc::new(stream("b", 0, 6, false));
        let tb = j.begin(&d, &b);
        d.apply(&b).unwrap();
        j.commit(tb);
        // Redo re-applies streams, so the download counter moves; compare
        // the configuration state only.
        let state = |d: &Device| {
            format!("{d:?}")
                .split(", downloads")
                .next()
                .unwrap()
                .to_string()
        };
        let after = state(&d);

        let out = j.recover(&mut d).unwrap();
        assert_eq!((out.redone, out.undone), (2, 0));
        assert_eq!(state(&d), after, "redo is idempotent");
        assert_eq!(j.len(), 2, "committed records are retained");
    }

    #[test]
    fn truncate_drops_committed_keeps_open() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        let mut j = Journal::new();
        let a = Arc::new(stream("a", 0, 4, false));
        let ta = j.begin(&d, &a);
        d.apply(&a).unwrap();
        j.commit(ta);
        let b = Arc::new(stream("b", 1, 4, false));
        j.begin(&d, &b);
        assert_eq!((j.len(), j.open_txns()), (2, 1));
        j.truncate_committed();
        assert_eq!((j.len(), j.open_txns()), (1, 1));
    }

    #[test]
    fn apply_torn_validates_like_apply_and_skips_iobs() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        let bad = stream("bad", 0, 4, false).corrupted();
        assert_eq!(d.apply_torn(&bad, 1), Err(DeviceError::CrcMismatch));
        assert_eq!(d.used_clbs(), 0);

        let ok = stream("ok", 0, 4, false);
        d.apply_torn(&ok, 1).unwrap();
        assert_eq!(d.used_clbs(), 4, "prefix frames landed");
        assert_eq!(d.iob(0), IobConfig::Unused, "IOB writes never landed");
        assert_eq!(d.download_count(), 0, "download never completed");
    }

    #[test]
    fn migration_intent_without_commit_rolls_back() {
        let mut l = MigrationLog::new();
        l.record(3, 0, 1, MigrationPhase::Intent);
        let res = l.resolve();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0.tenant, 3);
        assert_eq!(res[0].0.to_device, 1);
        assert_eq!(res[0].1, MigrationResolution::RollBack);
    }

    #[test]
    fn migration_commit_without_free_redoes_the_free() {
        let mut l = MigrationLog::new();
        l.record(3, 0, 1, MigrationPhase::Intent);
        l.record(3, 0, 1, MigrationPhase::Commit);
        assert_eq!(l.resolve()[0].1, MigrationResolution::RedoFree);
        // Completing the free resolves the attempt; a second replay of the
        // same log does nothing (idempotent recovery).
        l.record(3, 0, 1, MigrationPhase::Freed);
        assert_eq!(l.resolve()[0].1, MigrationResolution::Resolved);
        assert_eq!(l.resolve()[0].1, MigrationResolution::Resolved);
    }

    #[test]
    fn migration_aborted_and_freed_attempts_truncate_away() {
        let mut l = MigrationLog::new();
        l.record(1, 0, 2, MigrationPhase::Intent);
        l.record(1, 0, 2, MigrationPhase::Aborted);
        l.record(2, 0, 1, MigrationPhase::Intent);
        l.record(2, 0, 1, MigrationPhase::Commit);
        l.record(2, 0, 1, MigrationPhase::Freed);
        // A third tenant crashed mid-window: its attempt must survive
        // truncation so a later replay still sees it.
        l.record(7, 1, 0, MigrationPhase::Intent);
        l.record(7, 1, 0, MigrationPhase::Commit);
        assert_eq!(l.len(), 7);
        l.truncate_resolved();
        assert_eq!(l.len(), 2, "only the open attempt's records remain");
        let res = l.resolve();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0.tenant, 7);
        assert_eq!(res[0].1, MigrationResolution::RedoFree);
        assert!(!l.is_empty());
    }

    #[test]
    fn migration_resolution_tracks_the_latest_attempt_per_tenant() {
        let mut l = MigrationLog::new();
        // First attempt aborted, second attempt crashed mid-prepare: the
        // newest record governs.
        l.record(4, 0, 1, MigrationPhase::Intent);
        l.record(4, 0, 1, MigrationPhase::Aborted);
        l.record(4, 0, 2, MigrationPhase::Intent);
        let res = l.resolve();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0.to_device, 2, "newest attempt's destination");
        assert_eq!(res[0].1, MigrationResolution::RollBack);
        assert_eq!(res[0].0.seq, 2, "records are sequenced");
    }
}
