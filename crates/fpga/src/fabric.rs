//! Executable view of the configured fabric.
//!
//! The fabric runs *whatever is in configuration RAM* — there is no
//! side-channel to the original netlist. [`FabricView`] resolves the
//! configured CLBs into a combinational evaluation order (rejecting
//! combinational loops, which on silicon would oscillate) and then steps
//! the region cycle-by-cycle, 64 lanes wide. Flip-flop state lives in the
//! [`Device`], so OS readback/restore and fabric execution observe the
//! same bits — the property the paper's preemption machinery depends on.

use crate::bitstream::{ClbSource, IobConfig};
use crate::device::Device;
use crate::region::Rect;
use std::collections::HashMap;

/// Errors resolving or running a configured region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The configured logic contains a combinational cycle (would
    /// oscillate on real silicon).
    CombinationalLoop {
        /// A CLB on the cycle.
        col: u32,
        /// A CLB on the cycle.
        row: u32,
    },
    /// A CLB input references a CLB outside the view's region — the
    /// circuit is incomplete (e.g. partially paged out).
    DanglingSource {
        /// Referencing CLB column.
        col: u32,
        /// Referencing CLB row.
        row: u32,
    },
    /// A CLB input references a pin not configured as an input IOB.
    BadPinSource(u32),
    /// An output IOB points at an unconfigured CLB.
    DeadOutput(u32),
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::CombinationalLoop { col, row } => {
                write!(f, "combinational loop through CLB ({col},{row})")
            }
            FabricError::DanglingSource { col, row } => {
                write!(f, "CLB ({col},{row}) reads an unconfigured source")
            }
            FabricError::BadPinSource(p) => {
                write!(f, "CLB reads pin {p} which is not an input IOB")
            }
            FabricError::DeadOutput(p) => write!(f, "output pin {p} driven by unconfigured CLB"),
        }
    }
}

impl std::error::Error for FabricError {}

/// A resolved, runnable view of one region of the device.
///
/// Construction performs the topological analysis once; stepping is then
/// linear in the number of configured CLBs.
#[derive(Debug)]
pub struct FabricView {
    region: Rect,
    /// Configured cell coordinates in combinational evaluation order.
    order: Vec<(u32, u32)>,
    /// Input pins the view reads, in ascending order.
    in_pins: Vec<u32>,
    /// Output pins the view drives, with their source CLB.
    out_pins: Vec<(u32, (u32, u32))>,
    /// Scratch: latest combinational output per cell (keyed by coords).
    comb_out: HashMap<(u32, u32), u64>,
}

impl FabricView {
    /// Resolve the configured contents of `region` on `device`.
    pub fn resolve(device: &Device, region: Rect) -> Result<FabricView, FabricError> {
        assert!(
            device.spec().full_rect().contains_rect(&region),
            "view region outside device"
        );
        // Gather configured cells.
        let mut cells: Vec<(u32, u32)> = Vec::new();
        for (c, r) in region.cells() {
            if device.cell(c, r).is_some() {
                cells.push((c, r));
            }
        }

        // Combinational dependency check + topological sort (Kahn).
        let index: HashMap<(u32, u32), usize> =
            cells.iter().enumerate().map(|(i, &cr)| (cr, i)).collect();
        let mut indeg = vec![0usize; cells.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); cells.len()];
        for (i, &(c, r)) in cells.iter().enumerate() {
            let cell = device.cell(c, r).expect("gathered above");
            for src in cell.inputs {
                match src {
                    ClbSource::Clb(sc, sr) => {
                        let Some(&j) = index.get(&(sc, sr)) else {
                            // Outside the region or unconfigured.
                            if region.contains(sc, sr) {
                                return Err(FabricError::DanglingSource { col: c, row: r });
                            }
                            return Err(FabricError::DanglingSource { col: c, row: r });
                        };
                        let src_cell = device.cell(sc, sr).expect("indexed");
                        // A registered output is a sequential edge.
                        if !src_cell.out_from_ff {
                            dependents[j].push(i);
                            indeg[i] += 1;
                        }
                    }
                    ClbSource::Pin(p) => {
                        if p >= device.spec().io_pins || !matches!(device.iob(p), IobConfig::Input)
                        {
                            return Err(FabricError::BadPinSource(p));
                        }
                    }
                    ClbSource::None | ClbSource::Const(_) => {}
                }
            }
        }
        let mut queue: Vec<usize> = (0..cells.len()).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(cells.len());
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            order.push(cells[i]);
            for &d in &dependents[i] {
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() != cells.len() {
            let &(c, r) = cells
                .iter()
                .find(|cr| indeg[index[*cr]] > 0)
                .expect("cycle must leave positive in-degree");
            return Err(FabricError::CombinationalLoop { col: c, row: r });
        }

        // Pins.
        let mut in_pins = Vec::new();
        let mut out_pins = Vec::new();
        for p in 0..device.spec().io_pins {
            match device.iob(p) {
                IobConfig::Input => in_pins.push(p),
                IobConfig::Output(c, r) => {
                    if region.contains(c, r) {
                        if device.cell(c, r).is_none() {
                            return Err(FabricError::DeadOutput(p));
                        }
                        out_pins.push((p, (c, r)));
                    }
                }
                IobConfig::Unused => {}
            }
        }

        Ok(FabricView {
            region,
            order,
            in_pins,
            out_pins,
            comb_out: HashMap::new(),
        })
    }

    /// The region this view executes.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Input pins read by the view (ascending).
    pub fn input_pins(&self) -> &[u32] {
        &self.in_pins
    }

    /// Output pins driven by the view (ascending), with source CLBs.
    pub fn output_pins(&self) -> &[(u32, (u32, u32))] {
        &self.out_pins
    }

    /// Number of configured CLBs in the view.
    pub fn cell_count(&self) -> usize {
        self.order.len()
    }

    fn source_value(&self, device: &Device, src: ClbSource, pins: &HashMap<u32, u64>) -> u64 {
        match src {
            ClbSource::None => 0,
            ClbSource::Const(b) => {
                if b {
                    u64::MAX
                } else {
                    0
                }
            }
            ClbSource::Pin(p) => pins.get(&p).copied().unwrap_or(0),
            ClbSource::Clb(c, r) => {
                let cell = device.cell(c, r).expect("resolved view");
                if cell.out_from_ff {
                    device.ff_word(c, r)
                } else {
                    self.comb_out.get(&(c, r)).copied().unwrap_or(0)
                }
            }
        }
    }

    /// Evaluate all combinational logic for the given pin values
    /// (`pins[pin] = 64-lane word`). Registers are not advanced.
    pub fn eval(&mut self, device: &Device, pins: &HashMap<u32, u64>) {
        // Evaluate in topological order into comb_out.
        let order = self.order.clone();
        for (c, r) in order {
            let cell = device.cell(c, r).expect("resolved view");
            let in_words: [u64; 4] = [
                self.source_value(device, cell.inputs[0], pins),
                self.source_value(device, cell.inputs[1], pins),
                self.source_value(device, cell.inputs[2], pins),
                self.source_value(device, cell.inputs[3], pins),
            ];
            let mut out = 0u64;
            for lane in 0..64 {
                let mut idx = 0usize;
                for (b, w) in in_words.iter().enumerate() {
                    idx |= (((w >> lane) & 1) as usize) << b;
                }
                out |= (((cell.lut_table >> idx) & 1) as u64) << lane;
            }
            self.comb_out.insert((c, r), out);
        }
    }

    /// Latch every flip-flop in the view from its LUT output. Call after
    /// [`FabricView::eval`].
    pub fn clock(&self, device: &mut Device) {
        for &(c, r) in &self.order {
            let cell = device.cell(c, r).expect("resolved view");
            if cell.has_ff {
                let v = self.comb_out.get(&(c, r)).copied().unwrap_or(0);
                device.set_ff_word(c, r, v);
            }
        }
    }

    /// One full synchronous cycle.
    pub fn step(&mut self, device: &mut Device, pins: &HashMap<u32, u64>) {
        self.eval(device, pins);
        self.clock(device);
    }

    /// Read the word currently driven onto output `pin`.
    ///
    /// # Panics
    /// Panics if `pin` is not one of the view's outputs.
    pub fn output(&self, device: &Device, pin: u32) -> u64 {
        let &(_, (c, r)) = self
            .out_pins
            .iter()
            .find(|(p, _)| *p == pin)
            .unwrap_or_else(|| panic!("pin {pin} is not an output of this view"));
        let cell = device.cell(c, r).expect("resolved view");
        if cell.out_from_ff {
            device.ff_word(c, r)
        } else {
            self.comb_out.get(&(c, r)).copied().unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::{Bitstream, ClbCell, FrameWrite};
    use crate::config::ConfigPort;
    use crate::device::part;

    fn device() -> Device {
        Device::new(part("VF100"), ConfigPort::SerialFast)
    }

    fn pins(vals: &[(u32, u64)]) -> HashMap<u32, u64> {
        vals.iter().copied().collect()
    }

    #[test]
    fn xor_gate_executes() {
        let mut d = device();
        let cell = ClbCell::comb(
            0b0110,
            [
                ClbSource::Pin(0),
                ClbSource::Pin(1),
                ClbSource::None,
                ClbSource::None,
            ],
        );
        let bs = Bitstream::new(
            "xor",
            vec![FrameWrite {
                col: 2,
                row0: 2,
                cells: vec![Some(cell)],
            }],
            vec![
                (0, IobConfig::Input),
                (1, IobConfig::Input),
                (5, IobConfig::Output(2, 2)),
            ],
            false,
        );
        d.apply(&bs).unwrap();
        let mut v = FabricView::resolve(&d, Rect::new(0, 0, 10, 10)).unwrap();
        v.eval(&d, &pins(&[(0, 0b1100), (1, 0b1010)]));
        assert_eq!(v.output(&d, 5) & 0xF, 0b0110);
    }

    #[test]
    fn two_level_logic_orders_correctly() {
        let mut d = device();
        // CLB(0,0) = AND(pin0, pin1); CLB(1,0) = NOT(CLB(0,0)).
        let and = ClbCell::comb(
            0b1000,
            [
                ClbSource::Pin(0),
                ClbSource::Pin(1),
                ClbSource::None,
                ClbSource::None,
            ],
        );
        let not = ClbCell::comb(
            0b01,
            [
                ClbSource::Clb(0, 0),
                ClbSource::None,
                ClbSource::None,
                ClbSource::None,
            ],
        );
        let bs = Bitstream::new(
            "nand2",
            vec![
                // Deliberately download the downstream CLB first; execution
                // order must come from the dependency analysis, not the
                // download order.
                FrameWrite {
                    col: 1,
                    row0: 0,
                    cells: vec![Some(not)],
                },
                FrameWrite {
                    col: 0,
                    row0: 0,
                    cells: vec![Some(and)],
                },
            ],
            vec![
                (0, IobConfig::Input),
                (1, IobConfig::Input),
                (2, IobConfig::Output(1, 0)),
            ],
            false,
        );
        d.apply(&bs).unwrap();
        let mut v = FabricView::resolve(&d, Rect::new(0, 0, 10, 10)).unwrap();
        for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            v.eval(&d, &pins(&[(0, a), (1, b)]));
            assert_eq!(v.output(&d, 2) & 1, 1 - (a & b), "a={a} b={b}");
        }
    }

    #[test]
    fn registered_toggle_runs_and_reads_back() {
        let mut d = device();
        // CLB(3,3): LUT = NOT(self FF), registered, out from FF -> toggle.
        let toggle = ClbCell::registered(
            0b01,
            [
                ClbSource::Clb(3, 3),
                ClbSource::None,
                ClbSource::None,
                ClbSource::None,
            ],
            false,
        );
        let bs = Bitstream::new(
            "toggle",
            vec![FrameWrite {
                col: 3,
                row0: 3,
                cells: vec![Some(toggle)],
            }],
            vec![(0, IobConfig::Output(3, 3))],
            false,
        );
        d.apply(&bs).unwrap();
        let mut v = FabricView::resolve(&d, Rect::new(0, 0, 10, 10)).unwrap();
        let empty = pins(&[]);
        let mut seen = Vec::new();
        for _ in 0..4 {
            v.eval(&d, &empty);
            seen.push(v.output(&d, 0) & 1);
            v.clock(&mut d);
        }
        assert_eq!(seen, vec![0, 1, 0, 1]);

        // OS-style save/restore through Device readback.
        let r = Rect::new(3, 3, 1, 1);
        let (snap, _) = d.readback_region(&r);
        v.step(&mut d, &empty);
        v.eval(&d, &empty);
        let after = v.output(&d, 0) & 1;
        d.write_state_region(&r, &snap);
        v.eval(&d, &empty);
        let restored = v.output(&d, 0) & 1;
        assert_ne!(after, restored, "restore must rewind the toggle");
    }

    #[test]
    fn combinational_loop_detected() {
        let mut d = device();
        let a = ClbCell::comb(
            0b01,
            [
                ClbSource::Clb(1, 0),
                ClbSource::None,
                ClbSource::None,
                ClbSource::None,
            ],
        );
        let b = ClbCell::comb(
            0b01,
            [
                ClbSource::Clb(0, 0),
                ClbSource::None,
                ClbSource::None,
                ClbSource::None,
            ],
        );
        let bs = Bitstream::new(
            "loop",
            vec![
                FrameWrite {
                    col: 0,
                    row0: 0,
                    cells: vec![Some(a)],
                },
                FrameWrite {
                    col: 1,
                    row0: 0,
                    cells: vec![Some(b)],
                },
            ],
            vec![],
            false,
        );
        d.apply(&bs).unwrap();
        assert!(matches!(
            FabricView::resolve(&d, Rect::new(0, 0, 10, 10)),
            Err(FabricError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn dangling_source_detected() {
        let mut d = device();
        let a = ClbCell::comb(
            0b01,
            [
                ClbSource::Clb(5, 5),
                ClbSource::None,
                ClbSource::None,
                ClbSource::None,
            ],
        );
        let bs = Bitstream::new(
            "dangle",
            vec![FrameWrite {
                col: 0,
                row0: 0,
                cells: vec![Some(a)],
            }],
            vec![],
            false,
        );
        d.apply(&bs).unwrap();
        assert!(matches!(
            FabricView::resolve(&d, Rect::new(0, 0, 10, 10)),
            Err(FabricError::DanglingSource { col: 0, row: 0 })
        ));
    }

    #[test]
    fn unconfigured_pin_source_detected() {
        let mut d = device();
        let a = ClbCell::comb(
            0b10,
            [
                ClbSource::Pin(7),
                ClbSource::None,
                ClbSource::None,
                ClbSource::None,
            ],
        );
        let bs = Bitstream::new(
            "badpin",
            vec![FrameWrite {
                col: 0,
                row0: 0,
                cells: vec![Some(a)],
            }],
            vec![], // pin 7 never configured as input
            false,
        );
        d.apply(&bs).unwrap();
        match FabricView::resolve(&d, Rect::new(0, 0, 10, 10)) {
            Err(FabricError::BadPinSource(7)) => {}
            other => panic!("expected BadPinSource(7), got {other:?}"),
        }
    }

    #[test]
    fn sequential_cross_feedback_is_legal() {
        // Two registered CLBs feeding each other: fine, edges are sequential.
        let mut d = device();
        let a = ClbCell::registered(
            0b01,
            [
                ClbSource::Clb(1, 0),
                ClbSource::None,
                ClbSource::None,
                ClbSource::None,
            ],
            false,
        );
        let b = ClbCell::registered(
            0b10,
            [
                ClbSource::Clb(0, 0),
                ClbSource::None,
                ClbSource::None,
                ClbSource::None,
            ],
            true,
        );
        let bs = Bitstream::new(
            "pair",
            vec![
                FrameWrite {
                    col: 0,
                    row0: 0,
                    cells: vec![Some(a)],
                },
                FrameWrite {
                    col: 1,
                    row0: 0,
                    cells: vec![Some(b)],
                },
            ],
            vec![],
            false,
        );
        d.apply(&bs).unwrap();
        let v = FabricView::resolve(&d, Rect::new(0, 0, 10, 10));
        assert!(v.is_ok());
        assert_eq!(v.unwrap().cell_count(), 2);
    }
}
