//! The device catalog and the device state.
//!
//! [`DeviceSpec`] describes a part's geometry; [`Device`] holds live
//! configuration RAM (the CLB grid and IOBs) and flip-flop state, applies
//! bitstreams, and exposes readback/state-write — the physical substrate
//! every VFPGA technique manipulates.

use crate::bitstream::{Bitstream, ClbCell, IobConfig};
use crate::config::{ConfigPort, ConfigTiming};
use crate::region::Rect;
use fsim::SimDuration;

/// Geometry and capability of one part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Part name.
    pub name: &'static str,
    /// CLB columns.
    pub cols: u32,
    /// CLB rows.
    pub rows: u32,
    /// User I/O pins.
    pub io_pins: u32,
    /// Marketing gate count (for report tables only).
    pub gates: u32,
}

impl DeviceSpec {
    /// Total CLBs.
    pub fn clbs(&self) -> u32 {
        self.cols * self.rows
    }

    /// The whole-device region.
    pub fn full_rect(&self) -> Rect {
        Rect::new(0, 0, self.cols, self.rows)
    }
}

/// The part catalog — a family spanning the paper's "up to 250 K gates"
/// range. Geometry follows the XC4000 progression (square arrays, pin
/// count growing with the perimeter).
pub const PARTS: &[DeviceSpec] = &[
    DeviceSpec {
        name: "VF100",
        cols: 10,
        rows: 10,
        io_pins: 64,
        gates: 10_000,
    },
    DeviceSpec {
        name: "VF200",
        cols: 14,
        rows: 14,
        io_pins: 96,
        gates: 20_000,
    },
    DeviceSpec {
        name: "VF400",
        cols: 20,
        rows: 20,
        io_pins: 128,
        gates: 40_000,
    },
    DeviceSpec {
        name: "VF600",
        cols: 24,
        rows: 24,
        io_pins: 160,
        gates: 60_000,
    },
    DeviceSpec {
        name: "VF800",
        cols: 32,
        rows: 32,
        io_pins: 224,
        gates: 100_000,
    },
    DeviceSpec {
        name: "VF1000",
        cols: 40,
        rows: 40,
        io_pins: 288,
        gates: 150_000,
    },
    DeviceSpec {
        name: "VF1500",
        cols: 48,
        rows: 48,
        io_pins: 352,
        gates: 200_000,
    },
    DeviceSpec {
        name: "VF2000",
        cols: 56,
        rows: 56,
        io_pins: 448,
        gates: 250_000,
    },
];

/// Look up a part by name.
pub fn part(name: &str) -> DeviceSpec {
    *PARTS
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("unknown part '{name}'"))
}

/// Errors surfaced by the device when applying configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Bitstream checksum mismatch — the stream is rejected untouched.
    CrcMismatch,
    /// A frame addresses a column/row outside the device.
    OutOfRange {
        /// Offending column.
        col: u32,
        /// Offending row.
        row: u32,
    },
    /// An IOB write addresses a pin the package doesn't have.
    BadPin(u32),
    /// The port in use cannot perform partial writes.
    PartialUnsupported,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::CrcMismatch => write!(f, "bitstream CRC mismatch"),
            DeviceError::OutOfRange { col, row } => {
                write!(f, "frame write outside device at ({col},{row})")
            }
            DeviceError::BadPin(p) => write!(f, "no such pin {p}"),
            DeviceError::PartialUnsupported => {
                write!(f, "configuration port cannot do partial writes")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Live device state: configuration RAM + flip-flop contents.
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
    port: ConfigPort,
    cells: Vec<Option<ClbCell>>,
    iobs: Vec<IobConfig>,
    /// Flip-flop value per CLB, 64 simulation lanes wide.
    ff: Vec<u64>,
    /// Count of configuration downloads performed (diagnostics).
    downloads: u64,
}

impl Device {
    /// A blank (unconfigured) device.
    pub fn new(spec: DeviceSpec, port: ConfigPort) -> Self {
        Device {
            spec,
            port,
            cells: vec![None; spec.clbs() as usize],
            iobs: vec![IobConfig::Unused; spec.io_pins as usize],
            ff: vec![0; spec.clbs() as usize],
            downloads: 0,
        }
    }

    /// The part geometry.
    pub fn spec(&self) -> DeviceSpec {
        self.spec
    }

    /// The configured port.
    pub fn port(&self) -> ConfigPort {
        self.port
    }

    /// The timing calculator for this device+port.
    pub fn timing(&self) -> ConfigTiming {
        ConfigTiming {
            spec: self.spec,
            port: self.port,
        }
    }

    #[inline]
    fn idx(&self, col: u32, row: u32) -> usize {
        (row * self.spec.cols + col) as usize
    }

    /// Cell configuration at `(col, row)`.
    pub fn cell(&self, col: u32, row: u32) -> Option<ClbCell> {
        self.cells[self.idx(col, row)]
    }

    /// IOB configuration of `pin`.
    pub fn iob(&self, pin: u32) -> IobConfig {
        self.iobs[pin as usize]
    }

    /// Number of configured (non-empty) CLBs.
    pub fn used_clbs(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Total downloads applied so far.
    pub fn download_count(&self) -> u64 {
        self.downloads
    }

    /// FNV-1a digest of the complete device state — configuration RAM,
    /// IOBs, and flip-flop contents (the download counter is excluded:
    /// it counts operations, not state). Two devices with equal digests
    /// hold byte-identical fabric state; the delta-reconfiguration
    /// equivalence tests compare this against a fresh full download.
    pub fn state_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |b: u64| {
            for i in 0..8 {
                h ^= (b >> (i * 8)) & 0xFF;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for c in &self.cells {
            match c {
                None => eat(u64::MAX),
                Some(cell) => {
                    eat(cell.lut_table as u64);
                    for s in cell.inputs {
                        eat(crate::bitstream::source_code(s));
                    }
                    eat(cell.has_ff as u64
                        | ((cell.ff_init as u64) << 1)
                        | ((cell.out_from_ff as u64) << 2));
                }
            }
        }
        for iob in &self.iobs {
            eat(match *iob {
                IobConfig::Input => 1,
                IobConfig::Output(c, r) => 2 | ((c as u64) << 8) | ((r as u64) << 40),
                IobConfig::Unused => 0,
            });
        }
        for &w in &self.ff {
            eat(w);
        }
        h
    }

    /// Validate a bitstream against this device without mutating anything
    /// (the shared front half of [`Device::apply`] and
    /// [`Device::apply_torn`]).
    fn validate(&self, bs: &Bitstream) -> Result<(), DeviceError> {
        if !bs.crc_ok() {
            return Err(DeviceError::CrcMismatch);
        }
        if !bs.full && !self.port.supports_partial() {
            return Err(DeviceError::PartialUnsupported);
        }
        for f in &bs.frames {
            if f.col >= self.spec.cols {
                return Err(DeviceError::OutOfRange { col: f.col, row: 0 });
            }
            let end_row = f.row0 as usize + f.cells.len();
            if end_row > self.spec.rows as usize {
                return Err(DeviceError::OutOfRange {
                    col: f.col,
                    row: end_row as u32 - 1,
                });
            }
        }
        for &(pin, _) in &bs.iobs {
            if pin >= self.spec.io_pins {
                return Err(DeviceError::BadPin(pin));
            }
        }
        Ok(())
    }

    /// Validate and apply a bitstream, returning the download time.
    ///
    /// A rejected stream (bad CRC, out-of-range write, unsupported partial)
    /// leaves the device untouched.
    pub fn apply(&mut self, bs: &Bitstream) -> Result<SimDuration, DeviceError> {
        self.validate(bs)?;

        if bs.full {
            // A full download wipes the device first.
            self.cells.fill(None);
            self.iobs.fill(IobConfig::Unused);
            self.ff.fill(0);
        }
        for f in &bs.frames {
            for (k, cell) in f.cells.iter().enumerate() {
                let row = f.row0 + k as u32;
                let i = self.idx(f.col, row);
                self.cells[i] = *cell;
                // (Re)configuring a CLB initializes its flip-flop.
                self.ff[i] = match cell {
                    Some(c) if c.has_ff && c.ff_init => u64::MAX,
                    _ => 0,
                };
            }
        }
        for &(pin, cfg) in &bs.iobs {
            self.iobs[pin as usize] = cfg;
        }
        self.downloads += 1;
        Ok(self.timing().download_time(bs))
    }

    /// Apply only the first `frames_applied` frames of a bitstream — what
    /// a host crash mid-download leaves behind. The stream itself is
    /// valid (it was cut short, not corrupted), so validation is the same
    /// as [`Device::apply`]; but no IOB writes land (they follow the
    /// frames in the stream), the download counter does not advance (the
    /// download never completed), and a torn *full* stream leaves the
    /// device wiped with only a prefix written — the worst case the
    /// journal's undo path must handle.
    pub fn apply_torn(&mut self, bs: &Bitstream, frames_applied: usize) -> Result<(), DeviceError> {
        self.validate(bs)?;
        let n = frames_applied.min(bs.frames.len());
        if bs.full {
            self.cells.fill(None);
            self.iobs.fill(IobConfig::Unused);
            self.ff.fill(0);
        }
        for f in &bs.frames[..n] {
            for (k, cell) in f.cells.iter().enumerate() {
                let row = f.row0 + k as u32;
                let i = self.idx(f.col, row);
                self.cells[i] = *cell;
                self.ff[i] = match cell {
                    Some(c) if c.has_ff && c.ff_init => u64::MAX,
                    _ => 0,
                };
            }
        }
        Ok(())
    }

    /// Raw cell write for the journal's undo path (pre-image restore).
    pub(crate) fn set_cell(&mut self, col: u32, row: u32, cell: Option<ClbCell>) {
        let i = self.idx(col, row);
        self.cells[i] = cell;
    }

    /// Raw IOB write for the journal's undo path.
    pub(crate) fn set_iob(&mut self, pin: u32, cfg: IobConfig) {
        self.iobs[pin as usize] = cfg;
    }

    /// Clear a region's CLBs (used when a partition is released), and
    /// unbind any output IOB driven from inside the region. This is
    /// bookkeeping, not a device operation: the OS simply forgets the
    /// contents; no download time is charged.
    pub fn clear_region(&mut self, r: &Rect) {
        assert!(
            self.spec.full_rect().contains_rect(r),
            "region outside device"
        );
        for (c, row) in r.cells() {
            let i = self.idx(c, row);
            self.cells[i] = None;
            self.ff[i] = 0;
        }
        for iob in &mut self.iobs {
            if let IobConfig::Output(c, row) = *iob {
                if r.contains(c, row) {
                    *iob = IobConfig::Unused;
                }
            }
        }
    }

    /// **Readback**: snapshot flip-flop words of every CLB in the region
    /// (row-major order), with the time the readback occupies the port.
    pub fn readback_region(&self, r: &Rect) -> (Vec<u64>, SimDuration) {
        assert!(
            self.spec.full_rect().contains_rect(r),
            "region outside device"
        );
        let state = r
            .cells()
            .map(|(c, row)| self.ff[self.idx(c, row)])
            .collect();
        let t = self.timing().readback_time(r.w as usize);
        (state, t)
    }

    /// **State write**: restore flip-flop words captured by
    /// [`Device::readback_region`] over the same region shape.
    pub fn write_state_region(&mut self, r: &Rect, state: &[u64]) -> SimDuration {
        assert!(
            self.spec.full_rect().contains_rect(r),
            "region outside device"
        );
        assert_eq!(state.len(), r.area() as usize, "state length mismatch");
        for ((c, row), &v) in r.cells().zip(state) {
            let i = self.idx(c, row);
            self.ff[i] = v;
        }
        self.timing().state_write_time(r.w as usize)
    }

    /// Raw flip-flop word access for the fabric executor.
    pub(crate) fn ff_word(&self, col: u32, row: u32) -> u64 {
        self.ff[self.idx(col, row)]
    }

    /// Raw flip-flop word write for the fabric executor.
    pub(crate) fn set_ff_word(&mut self, col: u32, row: u32, v: u64) {
        let i = self.idx(col, row);
        self.ff[i] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::{ClbSource, FrameWrite};

    fn xor_stream(spec: &DeviceSpec) -> Bitstream {
        let cell = ClbCell::comb(
            0b0110,
            [
                ClbSource::Pin(0),
                ClbSource::Pin(1),
                ClbSource::None,
                ClbSource::None,
            ],
        );
        Bitstream::new(
            "xor",
            vec![FrameWrite {
                col: 0,
                row0: 0,
                cells: vec![Some(cell); spec.rows as usize],
            }],
            vec![
                (0, IobConfig::Input),
                (1, IobConfig::Input),
                (2, IobConfig::Output(0, 0)),
            ],
            false,
        )
    }

    #[test]
    fn apply_partial_configures_cells() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        assert_eq!(d.used_clbs(), 0);
        let t = d.apply(&xor_stream(&spec)).unwrap();
        assert!(t.as_nanos() > 0);
        assert_eq!(d.used_clbs(), spec.rows as usize);
        assert!(d.cell(0, 0).is_some());
        assert_eq!(d.iob(2), IobConfig::Output(0, 0));
        assert_eq!(d.download_count(), 1);
    }

    #[test]
    fn corrupted_stream_rejected_untouched() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        let bad = xor_stream(&spec).corrupted();
        assert_eq!(d.apply(&bad), Err(DeviceError::CrcMismatch));
        assert_eq!(d.used_clbs(), 0);
        assert_eq!(d.download_count(), 0);
    }

    #[test]
    fn slow_serial_port_rejects_partial() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialSlow);
        assert_eq!(
            d.apply(&xor_stream(&spec)),
            Err(DeviceError::PartialUnsupported)
        );
        let mut full = xor_stream(&spec);
        full.full = true;
        let full = Bitstream::new(full.label, full.frames, full.iobs, true);
        assert!(d.apply(&full).is_ok());
    }

    #[test]
    fn out_of_range_frame_rejected() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        let cell = ClbCell::comb(0, [ClbSource::None; 4]);
        let bs = Bitstream::new(
            "oob",
            vec![FrameWrite {
                col: spec.cols,
                row0: 0,
                cells: vec![Some(cell)],
            }],
            vec![],
            false,
        );
        assert!(matches!(d.apply(&bs), Err(DeviceError::OutOfRange { .. })));

        let tall = Bitstream::new(
            "tall",
            vec![FrameWrite {
                col: 0,
                row0: spec.rows - 1,
                cells: vec![Some(cell); 2],
            }],
            vec![],
            false,
        );
        assert!(matches!(
            d.apply(&tall),
            Err(DeviceError::OutOfRange { .. })
        ));
    }

    #[test]
    fn bad_pin_rejected() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        let bs = Bitstream::new("p", vec![], vec![(spec.io_pins, IobConfig::Input)], false);
        assert_eq!(d.apply(&bs), Err(DeviceError::BadPin(spec.io_pins)));
    }

    /// Every rejection path must leave the device byte-identical: cells,
    /// flip-flops, IOBs, and the download counter. A full-stream rejection
    /// is the sharpest case — validation must come before the wipe.
    #[test]
    fn apply_is_side_effect_free_on_every_error_path() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        d.apply(&xor_stream(&spec)).unwrap();
        // Distinctive flip-flop state so a stray wipe shows up.
        d.set_ff_word(0, 0, 0xDEAD_BEEF);
        d.set_ff_word(0, 3, 0x1234_5678);
        let before = format!("{d:?}");

        let cell = ClbCell::comb(0, [ClbSource::None; 4]);
        let corrupt = xor_stream(&spec).corrupted();
        let oob_col = Bitstream::new(
            "oob-col",
            vec![FrameWrite {
                col: spec.cols,
                row0: 0,
                cells: vec![Some(cell)],
            }],
            vec![],
            false,
        );
        let oob_row = Bitstream::new(
            "oob-row",
            vec![FrameWrite {
                col: 0,
                row0: spec.rows - 1,
                cells: vec![Some(cell); 2],
            }],
            vec![],
            false,
        );
        let bad_pin = Bitstream::new("pin", vec![], vec![(spec.io_pins, IobConfig::Input)], false);
        // A *full* stream with an invalid frame: rejection must precede
        // the wipe a full download normally performs.
        let full_oob = Bitstream::new(
            "full-oob",
            vec![FrameWrite {
                col: spec.cols,
                row0: 0,
                cells: vec![Some(cell)],
            }],
            vec![],
            true,
        );
        for (bs, err) in [
            (&corrupt, DeviceError::CrcMismatch),
            (
                &oob_col,
                DeviceError::OutOfRange {
                    col: spec.cols,
                    row: 0,
                },
            ),
            (
                &oob_row,
                DeviceError::OutOfRange {
                    col: 0,
                    row: spec.rows,
                },
            ),
            (&bad_pin, DeviceError::BadPin(spec.io_pins)),
            (
                &full_oob,
                DeviceError::OutOfRange {
                    col: spec.cols,
                    row: 0,
                },
            ),
        ] {
            assert_eq!(d.apply(bs), Err(err));
            assert_eq!(
                format!("{d:?}"),
                before,
                "rejected {:?} mutated state",
                bs.label
            );
        }

        // PartialUnsupported on a slow-port device configured via a full
        // download.
        let mut slow = Device::new(spec, ConfigPort::SerialSlow);
        let f = xor_stream(&spec);
        let full = Bitstream::new(f.label, f.frames, f.iobs, true);
        slow.apply(&full).unwrap();
        slow.set_ff_word(0, 1, 0xCAFE);
        let before_slow = format!("{slow:?}");
        assert_eq!(
            slow.apply(&xor_stream(&spec)),
            Err(DeviceError::PartialUnsupported)
        );
        assert_eq!(format!("{slow:?}"), before_slow);
        assert_eq!(slow.download_count(), 1);
    }

    #[test]
    fn full_download_wipes_previous_contents() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        d.apply(&xor_stream(&spec)).unwrap();
        let empty_full = Bitstream::new("wipe", vec![], vec![], true);
        d.apply(&empty_full).unwrap();
        assert_eq!(d.used_clbs(), 0);
        assert_eq!(d.iob(2), IobConfig::Unused);
    }

    #[test]
    fn readback_roundtrip() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        let r = Rect::new(2, 3, 3, 2);
        // Manually poke FF state (stands in for circuit activity).
        d.set_ff_word(2, 3, 0xAB);
        d.set_ff_word(4, 4, 0xCD);
        let (state, t) = d.readback_region(&r);
        assert!(t.as_nanos() > 0);
        assert_eq!(state.len(), 6);
        assert_eq!(state[0], 0xAB);
        assert_eq!(state[5], 0xCD);

        d.set_ff_word(2, 3, 0);
        d.set_ff_word(4, 4, 0);
        d.write_state_region(&r, &state);
        assert_eq!(d.ff_word(2, 3), 0xAB);
        assert_eq!(d.ff_word(4, 4), 0xCD);
    }

    #[test]
    fn clear_region_wipes_cells_state_and_driven_iobs() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        d.apply(&xor_stream(&spec)).unwrap();
        d.set_ff_word(0, 0, 7);
        assert_eq!(d.iob(2), IobConfig::Output(0, 0));
        d.clear_region(&Rect::new(0, 0, 1, spec.rows));
        assert_eq!(d.used_clbs(), 0);
        assert_eq!(d.ff_word(0, 0), 0);
        assert_eq!(d.iob(2), IobConfig::Unused, "output IOB must unbind");
        assert_eq!(d.iob(0), IobConfig::Input, "input IOBs are untouched");
    }

    #[test]
    fn reconfiguring_a_clb_resets_its_ff_to_init() {
        let spec = part("VF100");
        let mut d = Device::new(spec, ConfigPort::SerialFast);
        let cell = ClbCell::registered(
            0b01,
            [
                ClbSource::Pin(0),
                ClbSource::None,
                ClbSource::None,
                ClbSource::None,
            ],
            true,
        );
        let bs = Bitstream::new(
            "r",
            vec![FrameWrite {
                col: 1,
                row0: 1,
                cells: vec![Some(cell)],
            }],
            vec![(0, IobConfig::Input)],
            false,
        );
        d.apply(&bs).unwrap();
        assert_eq!(d.ff_word(1, 1), u64::MAX, "init=1 must preset the FF");
    }

    /// The delta contract at the device level: apply(old) then
    /// apply(diff(old, new)) must leave fabric state byte-identical to a
    /// fresh device after apply(new) — including cleared columns, unbound
    /// IOBs, and flip-flop init values.
    #[test]
    fn applying_delta_matches_full_download() {
        let spec = part("VF100");
        let cell = |lut: u16| {
            ClbCell::registered(
                lut,
                [
                    ClbSource::Pin(0),
                    ClbSource::None,
                    ClbSource::None,
                    ClbSource::None,
                ],
                lut & 1 == 1,
            )
        };
        let col = |c: u32, lut: u16| FrameWrite {
            col: c,
            row0: 0,
            cells: vec![Some(cell(lut)); spec.rows as usize],
        };
        let old = Bitstream::new(
            "old",
            vec![col(0, 3), col(1, 5), col(4, 7)],
            vec![(0, IobConfig::Input), (3, IobConfig::Output(0, 0))],
            false,
        );
        let new = Bitstream::new(
            "new",
            vec![col(0, 3), col(1, 6), col(2, 8)],
            vec![(0, IobConfig::Input), (5, IobConfig::Output(2, 0))],
            false,
        );
        let delta = Bitstream::diff(&old, &new);
        assert!(delta.changed_frames < new.frame_count() + 1);

        let mut via_delta = Device::new(spec, ConfigPort::SerialFast);
        via_delta.apply(&old).unwrap();
        via_delta.apply(&delta.stream).unwrap();
        let mut via_full = Device::new(spec, ConfigPort::SerialFast);
        via_full.apply(&new).unwrap();
        assert_eq!(via_delta.state_digest(), via_full.state_digest());
        // And the digest actually discriminates.
        let mut other = Device::new(spec, ConfigPort::SerialFast);
        other.apply(&old).unwrap();
        assert_ne!(other.state_digest(), via_full.state_digest());
    }

    #[test]
    fn catalog_is_ordered_and_unique() {
        for w in PARTS.windows(2) {
            assert!(w[0].clbs() < w[1].clbs());
            assert!(w[0].io_pins <= w[1].io_pins);
            assert_ne!(w[0].name, w[1].name);
        }
        assert_eq!(part("VF400").cols, 20);
    }
}
