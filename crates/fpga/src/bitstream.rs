//! Configuration bitstreams.
//!
//! A [`Bitstream`] is the unit the operating system downloads into the
//! device: a set of per-column [`FrameWrite`]s plus I/O-block settings,
//! protected by a checksum the device verifies on load (real bitstreams
//! carry a CRC; a corrupted stream must be rejected, not half-applied).
//! Partial bitstreams simply carry fewer frames.

use crate::region::Rect;
use std::collections::BTreeMap;

/// Where a CLB input or an output IOB takes its signal from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClbSource {
    /// Unconnected (reads as constant 0).
    None,
    /// Output of the CLB at `(col, row)`.
    Clb(u32, u32),
    /// Value of I/O pin `pin` (the IOB must be configured as an input).
    Pin(u32),
    /// Constant signal.
    Const(bool),
}

/// Configuration of one CLB: a K-input LUT, an optional flip-flop fed by
/// the LUT output, and an output selector (combinational or registered) —
/// the XC4000-style logic block reduced to what the experiments exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClbCell {
    /// LUT truth table (bit `m` = output for minterm `m`); K ≤ 4 so 16 bits.
    pub lut_table: u16,
    /// LUT input connections, LSB-first in minterm index.
    pub inputs: [ClbSource; 4],
    /// Whether the flip-flop is used.
    pub has_ff: bool,
    /// Flip-flop power-up value.
    pub ff_init: bool,
    /// If true the CLB output is the flip-flop output, else the LUT output.
    pub out_from_ff: bool,
}

impl ClbCell {
    /// A purely combinational cell.
    pub fn comb(lut_table: u16, inputs: [ClbSource; 4]) -> Self {
        ClbCell {
            lut_table,
            inputs,
            has_ff: false,
            ff_init: false,
            out_from_ff: false,
        }
    }

    /// A registered cell: LUT feeding the flip-flop, output from the FF.
    pub fn registered(lut_table: u16, inputs: [ClbSource; 4], ff_init: bool) -> Self {
        ClbCell {
            lut_table,
            inputs,
            has_ff: true,
            ff_init,
            out_from_ff: true,
        }
    }
}

/// One configuration frame write: a column, the row span it covers, and
/// the cell contents (None = clear the CLB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameWrite {
    /// Target column.
    pub col: u32,
    /// First row covered.
    pub row0: u32,
    /// Cell contents for rows `row0..row0+cells.len()`.
    pub cells: Vec<Option<ClbCell>>,
}

/// Configuration of one I/O block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IobConfig {
    /// Pin drives into the fabric.
    Input,
    /// Pin is driven by the CLB at the given coordinates.
    Output(u32, u32),
    /// Pin unused.
    Unused,
}

/// A full or partial configuration stream.
///
/// Deliberately *not* `Clone`: streams carry whole frame vectors, and the
/// system shares them via `Arc<Bitstream>` (journal after-images, compile
/// cache output). A deep copy on a download path is a bug, not a
/// convenience.
#[derive(Debug, PartialEq, Eq)]
pub struct Bitstream {
    /// Human-readable origin (circuit name) for traces.
    pub label: String,
    /// Frame writes, in download order.
    pub frames: Vec<FrameWrite>,
    /// IOB writes as `(pin, config)`.
    pub iobs: Vec<(u32, IobConfig)>,
    /// Whether this stream reconfigures the whole device (the serial
    /// full-configuration path) or only the listed frames (partial).
    pub full: bool,
    /// Integrity checksum over the payload.
    pub crc: u64,
}

impl Bitstream {
    /// Assemble a stream and stamp its checksum.
    pub fn new(
        label: impl Into<String>,
        frames: Vec<FrameWrite>,
        iobs: Vec<(u32, IobConfig)>,
        full: bool,
    ) -> Self {
        let mut bs = Bitstream {
            label: label.into(),
            frames,
            iobs,
            full,
            crc: 0,
        };
        bs.crc = bs.compute_crc();
        bs
    }

    /// FNV-1a over a canonical serialization of the payload.
    pub fn compute_crc(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |b: u64| {
            for i in 0..8 {
                h ^= (b >> (i * 8)) & 0xFF;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(self.full as u64);
        for f in &self.frames {
            eat(f.col as u64);
            eat(f.row0 as u64);
            eat(f.cells.len() as u64);
            for c in &f.cells {
                match c {
                    None => eat(u64::MAX),
                    Some(cell) => {
                        eat(cell.lut_table as u64);
                        for s in cell.inputs {
                            eat(source_code(s));
                        }
                        eat(cell.has_ff as u64
                            | ((cell.ff_init as u64) << 1)
                            | ((cell.out_from_ff as u64) << 2));
                    }
                }
            }
        }
        for &(pin, cfg) in &self.iobs {
            eat(pin as u64);
            eat(match cfg {
                IobConfig::Input => 1,
                IobConfig::Output(c, r) => 2 | ((c as u64) << 8) | ((r as u64) << 40),
                IobConfig::Unused => 0,
            });
        }
        h
    }

    /// Whether the stored checksum matches the payload.
    pub fn crc_ok(&self) -> bool {
        self.crc == self.compute_crc()
    }

    /// Number of distinct frame columns this stream writes.
    ///
    /// Called on every download pricing and report row, so it must not
    /// allocate: columns fit in a 128-bit set for every catalog part
    /// (the largest is 56 columns wide); the sort-and-dedup scan is kept
    /// only as a fallback for out-of-catalog geometries.
    pub fn frame_count(&self) -> usize {
        let mut mask: u128 = 0;
        for f in &self.frames {
            if f.col >= 128 {
                return self.frame_count_wide();
            }
            mask |= 1u128 << f.col;
        }
        mask.count_ones() as usize
    }

    /// Allocating fallback for streams addressing columns ≥ 128.
    fn frame_count_wide(&self) -> usize {
        let mut cols: Vec<u32> = self.frames.iter().map(|f| f.col).collect();
        cols.sort_unstable();
        cols.dedup();
        cols.len()
    }

    /// Whether any frame covers only part of a column of the given height
    /// (forcing a read-modify-write on the device).
    pub fn has_partial_columns(&self, device_rows: u32) -> bool {
        self.frames
            .iter()
            .any(|f| f.row0 != 0 || (f.cells.len() as u32) < device_rows)
    }

    /// The bounding region of all frame writes, if any.
    pub fn bounding_rect(&self) -> Option<Rect> {
        let mut min_c = u32::MAX;
        let mut max_c = 0;
        let mut min_r = u32::MAX;
        let mut max_r = 0;
        for f in &self.frames {
            min_c = min_c.min(f.col);
            max_c = max_c.max(f.col);
            min_r = min_r.min(f.row0);
            max_r = max_r.max(f.row0 + f.cells.len() as u32 - 1);
        }
        if min_c == u32::MAX {
            None
        } else {
            Some(Rect::new(
                min_c,
                min_r,
                max_c - min_c + 1,
                max_r - min_r + 1,
            ))
        }
    }

    /// Corrupt the checksum (test helper for the device's rejection path).
    pub fn corrupted(mut self) -> Self {
        self.crc ^= 0xDEAD_BEEF;
        self
    }

    /// Frame-wise delta between two streams targeting the same region.
    ///
    /// Produces a partial stream that, applied to a device currently
    /// holding exactly what `old` left behind (applied to a clean
    /// region), yields the configuration a download of `new` onto a
    /// clean region would — columns whose contents are identical are
    /// skipped entirely. A differing column is rewritten over the union
    /// row span of both streams' content there, with `None` cells
    /// clearing CLBs `old` configured and `new` does not; IOBs present
    /// only in `old` are explicitly unbound.
    ///
    /// Flip-flop caveat: cells the delta skips keep their current FF
    /// state, while a rewritten cell resets to its init value (exactly
    /// like any reconfiguration). The managers only apply deltas on
    /// fresh context switches where the incoming circuit starts from
    /// init anyway, so the equivalence holds where it is used.
    pub fn diff(old: &Bitstream, new: &Bitstream) -> DeltaStream {
        // Canonical per-column view: col -> row -> configured cell.
        // Later writes win and `None` clears, matching `Device::apply`.
        fn columns(bs: &Bitstream) -> BTreeMap<u32, BTreeMap<u32, ClbCell>> {
            let mut out: BTreeMap<u32, BTreeMap<u32, ClbCell>> = BTreeMap::new();
            for f in &bs.frames {
                let col = out.entry(f.col).or_default();
                for (k, c) in f.cells.iter().enumerate() {
                    let row = f.row0 + k as u32;
                    match c {
                        Some(cell) => {
                            col.insert(row, *cell);
                        }
                        None => {
                            col.remove(&row);
                        }
                    }
                }
            }
            out.retain(|_, m| !m.is_empty());
            out
        }
        let o = columns(old);
        let n = columns(new);
        let empty = BTreeMap::new();
        let mut frames = Vec::new();
        let mut cols: Vec<u32> = o.keys().chain(n.keys()).copied().collect();
        cols.sort_unstable();
        cols.dedup();
        for col in cols {
            let oc = o.get(&col).unwrap_or(&empty);
            let nc = n.get(&col).unwrap_or(&empty);
            if oc == nc {
                continue;
            }
            let lo = *oc.keys().chain(nc.keys()).min().expect("nonempty column");
            let hi = *oc.keys().chain(nc.keys()).max().expect("nonempty column");
            frames.push(FrameWrite {
                col,
                row0: lo,
                cells: (lo..=hi).map(|r| nc.get(&r).copied()).collect(),
            });
        }
        let oi: BTreeMap<u32, IobConfig> = old.iobs.iter().copied().collect();
        let ni: BTreeMap<u32, IobConfig> = new.iobs.iter().copied().collect();
        let mut iobs: Vec<(u32, IobConfig)> = ni
            .iter()
            .filter(|(pin, cfg)| oi.get(pin) != Some(cfg))
            .map(|(&pin, &cfg)| (pin, cfg))
            .collect();
        iobs.extend(
            oi.keys()
                .filter(|pin| !ni.contains_key(pin))
                .map(|&pin| (pin, IobConfig::Unused)),
        );
        iobs.sort_unstable_by_key(|&(pin, _)| pin);
        let changed_frames = frames.len();
        let changed_iobs = iobs.len();
        DeltaStream {
            stream: Bitstream::new(
                format!("delta:{}->{}", old.label, new.label),
                frames,
                iobs,
                false,
            ),
            changed_frames,
            total_frames: new.frame_count(),
            changed_iobs,
        }
    }
}

/// The result of [`Bitstream::diff`]: a partial stream carrying only the
/// frames/IOBs that differ, plus the counts the pricing layer needs.
#[derive(Debug)]
pub struct DeltaStream {
    /// Partial stream applying the changes (`full == false`).
    pub stream: Bitstream,
    /// Distinct columns the delta rewrites.
    pub changed_frames: usize,
    /// Distinct columns the full `new` stream writes — what a non-delta
    /// download would have cost.
    pub total_frames: usize,
    /// IOB writes in the delta (changed + explicitly unbound).
    pub changed_iobs: usize,
}

impl DeltaStream {
    /// Whether the two streams configure identical content (nothing to
    /// download beyond the stream header).
    pub fn is_identical(&self) -> bool {
        self.changed_frames == 0 && self.changed_iobs == 0
    }

    /// Columns a full (non-delta) download would write but the delta
    /// skips.
    pub fn frames_saved(&self) -> usize {
        self.total_frames.saturating_sub(self.changed_frames)
    }
}

pub(crate) fn source_code(s: ClbSource) -> u64 {
    match s {
        ClbSource::None => 0,
        ClbSource::Clb(c, r) => 1 | ((c as u64) << 8) | ((r as u64) << 40),
        ClbSource::Pin(p) => 2 | ((p as u64) << 8),
        ClbSource::Const(b) => 3 | ((b as u64) << 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bitstream {
        let cell = ClbCell::comb(
            0b0110,
            [
                ClbSource::Pin(0),
                ClbSource::Pin(1),
                ClbSource::None,
                ClbSource::None,
            ],
        );
        Bitstream::new(
            "xor",
            vec![FrameWrite {
                col: 3,
                row0: 2,
                cells: vec![Some(cell), None],
            }],
            vec![
                (0, IobConfig::Input),
                (1, IobConfig::Input),
                (2, IobConfig::Output(3, 2)),
            ],
            false,
        )
    }

    #[test]
    fn crc_is_stable_and_detects_tampering() {
        let bs = sample();
        assert!(bs.crc_ok());
        // Bitstream is intentionally not Clone; build fresh copies.
        assert_eq!(sample().crc, bs.crc, "construction is deterministic");
        let bad = sample().corrupted();
        assert!(!bad.crc_ok());

        let mut modified = sample();
        modified.frames[0].col = 4;
        assert!(!modified.crc_ok(), "payload change must invalidate CRC");
    }

    #[test]
    fn frame_count_dedupes_columns() {
        let cell = ClbCell::comb(0, [ClbSource::None; 4]);
        let bs = Bitstream::new(
            "x",
            vec![
                FrameWrite {
                    col: 1,
                    row0: 0,
                    cells: vec![Some(cell)],
                },
                FrameWrite {
                    col: 1,
                    row0: 4,
                    cells: vec![Some(cell)],
                },
                FrameWrite {
                    col: 2,
                    row0: 0,
                    cells: vec![Some(cell)],
                },
            ],
            vec![],
            false,
        );
        assert_eq!(bs.frame_count(), 2);
    }

    #[test]
    fn partial_column_detection() {
        let bs = sample();
        assert!(bs.has_partial_columns(10), "covers rows 2..4 of 10");
        let cell = ClbCell::comb(0, [ClbSource::None; 4]);
        let full_col = Bitstream::new(
            "f",
            vec![FrameWrite {
                col: 0,
                row0: 0,
                cells: vec![Some(cell); 10],
            }],
            vec![],
            false,
        );
        assert!(!full_col.has_partial_columns(10));
    }

    #[test]
    fn bounding_rect() {
        let bs = sample();
        assert_eq!(bs.bounding_rect(), Some(Rect::new(3, 2, 1, 2)));
        let empty = Bitstream::new("e", vec![], vec![], false);
        assert_eq!(empty.bounding_rect(), None);
    }

    /// Regression for the allocating frame_count: duplicate and
    /// out-of-order columns must dedupe through the bitmask scan exactly
    /// like the old sort-and-dedup, including past the u128 fallback
    /// boundary.
    #[test]
    fn frame_count_bitmask_matches_slow_scan() {
        let cell = ClbCell::comb(0, [ClbSource::None; 4]);
        let fw = |col: u32| FrameWrite {
            col,
            row0: 0,
            cells: vec![Some(cell)],
        };
        let bs = Bitstream::new(
            "dup",
            vec![fw(9), fw(2), fw(9), fw(0), fw(2), fw(55)],
            vec![],
            false,
        );
        assert_eq!(bs.frame_count(), 4);
        // Columns ≥ 128 exercise the wide fallback.
        let wide = Bitstream::new("wide", vec![fw(200), fw(3), fw(200)], vec![], false);
        assert_eq!(wide.frame_count(), 2);
        assert_eq!(Bitstream::new("e", vec![], vec![], false).frame_count(), 0);
    }

    fn col_stream(label: &str, cols: &[(u32, u16)], rows: usize) -> Bitstream {
        let frames = cols
            .iter()
            .map(|&(col, lut)| FrameWrite {
                col,
                row0: 0,
                cells: vec![Some(ClbCell::comb(lut, [ClbSource::None; 4])); rows],
            })
            .collect();
        Bitstream::new(label, frames, vec![], false)
    }

    #[test]
    fn diff_skips_identical_columns_and_counts_changes() {
        let old = col_stream("a", &[(0, 1), (1, 2), (2, 3)], 4);
        let new = col_stream("b", &[(0, 1), (1, 9), (2, 3)], 4);
        let d = Bitstream::diff(&old, &new);
        assert_eq!(d.changed_frames, 1);
        assert_eq!(d.total_frames, 3);
        assert_eq!(d.frames_saved(), 2);
        assert_eq!(d.changed_iobs, 0);
        assert!(!d.is_identical());
        assert_eq!(d.stream.frames.len(), 1);
        assert_eq!(d.stream.frames[0].col, 1);
        assert!(!d.stream.full);
        assert!(d.stream.crc_ok());
    }

    #[test]
    fn diff_of_identical_streams_is_empty() {
        let old = col_stream("a", &[(0, 1), (1, 2)], 4);
        let new = col_stream("a2", &[(0, 1), (1, 2)], 4);
        let d = Bitstream::diff(&old, &new);
        assert!(d.is_identical());
        assert_eq!(d.changed_frames, 0);
        assert!(d.stream.frames.is_empty());
    }

    #[test]
    fn diff_clears_columns_old_covered_but_new_does_not() {
        let old = col_stream("a", &[(0, 1), (1, 2)], 4);
        let new = col_stream("b", &[(0, 1)], 4);
        let d = Bitstream::diff(&old, &new);
        assert_eq!(d.changed_frames, 1);
        let f = &d.stream.frames[0];
        assert_eq!(f.col, 1);
        assert!(
            f.cells.iter().all(Option::is_none),
            "vacated column must be cleared, not left stale"
        );
    }

    #[test]
    fn diff_unbinds_stale_iobs_and_writes_changed_ones() {
        let mk = |iobs: Vec<(u32, IobConfig)>| Bitstream::new("s", vec![], iobs, false);
        let old = mk(vec![
            (0, IobConfig::Input),
            (1, IobConfig::Output(0, 0)),
            (2, IobConfig::Input),
        ]);
        let new = mk(vec![(0, IobConfig::Input), (1, IobConfig::Output(0, 1))]);
        let d = Bitstream::diff(&old, &new);
        assert_eq!(d.changed_iobs, 2);
        assert_eq!(
            d.stream.iobs,
            vec![(1, IobConfig::Output(0, 1)), (2, IobConfig::Unused)]
        );
    }

    #[test]
    fn diff_covers_union_row_span_of_partial_columns() {
        let cell = |lut: u16| ClbCell::comb(lut, [ClbSource::None; 4]);
        let old = Bitstream::new(
            "a",
            vec![FrameWrite {
                col: 0,
                row0: 1,
                cells: vec![Some(cell(1)), Some(cell(2))],
            }],
            vec![],
            false,
        );
        let new = Bitstream::new(
            "b",
            vec![FrameWrite {
                col: 0,
                row0: 3,
                cells: vec![Some(cell(3))],
            }],
            vec![],
            false,
        );
        let d = Bitstream::diff(&old, &new);
        let f = &d.stream.frames[0];
        // Union span rows 1..=3: clears old's rows 1-2, writes new row 3.
        assert_eq!((f.row0, f.cells.len()), (1, 3));
        assert_eq!(f.cells[0], None);
        assert_eq!(f.cells[1], None);
        assert_eq!(f.cells[2], Some(cell(3)));
    }

    #[test]
    fn cell_constructors() {
        let c = ClbCell::comb(7, [ClbSource::None; 4]);
        assert!(!c.has_ff && !c.out_from_ff);
        let r = ClbCell::registered(7, [ClbSource::None; 4], true);
        assert!(r.has_ff && r.out_from_ff && r.ff_init);
    }
}
