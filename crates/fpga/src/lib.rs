//! # fpga — the simulated physical device
//!
//! The paper targets RAM-based symmetrical-array FPGAs (Xilinx XC4000
//! class). This crate models one device family at the fidelity the VFPGA
//! operating system needs (see DESIGN.md §2 for the substitution
//! rationale):
//!
//! * [`DeviceSpec`] — a catalog of parts from 10×10 to 56×56 CLBs with
//!   pin counts and configuration-RAM geometry,
//! * [`region::Rect`] — rectangular CLB-region algebra used by the
//!   partition manager,
//! * [`bitstream::Bitstream`] — full and partial configuration streams
//!   with CRC protection,
//! * [`config`] — configuration-port timing (serial/parallel, full/partial
//!   /readback), calibrated so a flagship part takes ≈ 200 ms to configure
//!   serially, the paper's quantitative anchor,
//! * [`fabric`] — an *executable* configuration state: what is loaded in
//!   the CLB array is exactly what runs; flip-flop state is readable
//!   (observability) and writable (controllability),
//! * [`journal`] — a write-ahead journal making downloads crash-atomic:
//!   pre-images for undoing torn writes, after-images for redoing
//!   committed ones.

pub mod bitstream;
pub mod config;
pub mod device;
pub mod fabric;
pub mod journal;
pub mod region;

pub use bitstream::{Bitstream, ClbCell, ClbSource, DeltaStream, FrameWrite, IobConfig};
pub use config::{ConfigPort, ConfigTiming};
pub use device::{Device, DeviceSpec, PARTS};
pub use fabric::{FabricError, FabricView};
pub use journal::{
    Journal, MigrationLog, MigrationPhase, MigrationRecord, MigrationResolution, RecoveryOutcome,
    TxnId,
};
pub use region::Rect;
