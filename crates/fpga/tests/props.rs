//! Property-based tests for the device model: configuration round-trips,
//! readback/write-state inverses, and timing monotonicity.

use fpga::{Bitstream, ClbCell, ClbSource, ConfigPort, ConfigTiming, Device, FrameWrite, Rect};
use proptest::prelude::*;

fn part() -> fpga::DeviceSpec {
    fpga::device::part("VF200") // 14x14
}

proptest! {
    /// Applying a frame write then reading cells back returns exactly the
    /// written configuration.
    #[test]
    fn config_write_read_roundtrip(
        col in 0u32..14,
        row0 in 0u32..10,
        tables in proptest::collection::vec(any::<u16>(), 1..4),
    ) {
        let cells: Vec<Option<ClbCell>> = tables
            .iter()
            .map(|&t| Some(ClbCell::comb(t, [ClbSource::None; 4])))
            .collect();
        let bs = Bitstream::new(
            "p",
            vec![FrameWrite { col, row0, cells: cells.clone() }],
            vec![],
            false,
        );
        let mut d = Device::new(part(), ConfigPort::SerialFast);
        d.apply(&bs).unwrap();
        for (k, c) in cells.iter().enumerate() {
            prop_assert_eq!(d.cell(col, row0 + k as u32), *c);
        }
        prop_assert_eq!(d.used_clbs(), cells.len());
    }

    /// readback_region / write_state_region are inverses for any region
    /// and any state pattern.
    #[test]
    fn state_roundtrip(
        col in 0u32..10, row in 0u32..10,
        w in 1u32..5, h in 1u32..5,
        pattern in any::<u64>(),
    ) {
        prop_assume!(col + w <= 14 && row + h <= 14);
        let r = Rect::new(col, row, w, h);
        let mut d = Device::new(part(), ConfigPort::SerialFast);
        // Scatter a deterministic pattern.
        let state: Vec<u64> = (0..r.area() as u64)
            .map(|i| pattern.rotate_left((i % 63) as u32))
            .collect();
        d.write_state_region(&r, &state);
        let (read, _) = d.readback_region(&r);
        prop_assert_eq!(read, state);
    }

    /// Download time is monotone in the number of frames written.
    #[test]
    fn download_time_monotone_in_frames(n in 1usize..14) {
        let spec = part();
        let t = ConfigTiming { spec, port: ConfigPort::SerialFast };
        let cell = ClbCell::comb(0, [ClbSource::None; 4]);
        let mk = |frames: usize| {
            let fw: Vec<FrameWrite> = (0..frames as u32)
                .map(|c| FrameWrite { col: c, row0: 0, cells: vec![Some(cell); spec.rows as usize] })
                .collect();
            Bitstream::new("x", fw, vec![], false)
        };
        let a = t.download_time(&mk(n));
        let b = t.download_time(&mk(n + 0)); // identical
        prop_assert_eq!(a, b);
        if n < 13 {
            prop_assert!(t.download_time(&mk(n + 1)) > a);
        }
    }

    /// Corrupting any frame's column invalidates the CRC.
    #[test]
    fn crc_catches_column_shift(col in 0u32..13, table in any::<u16>()) {
        let cell = ClbCell::comb(table, [ClbSource::None; 4]);
        let bs = Bitstream::new(
            "p",
            vec![FrameWrite { col, row0: 0, cells: vec![Some(cell)] }],
            vec![],
            false,
        );
        let mut bad = bs.clone();
        bad.frames[0].col += 1;
        prop_assert!(!bad.crc_ok());
    }

    /// Region cells() yields exactly area() distinct in-bounds cells.
    #[test]
    fn region_cells_enumerate_area(
        col in 0u32..20, row in 0u32..20, w in 1u32..10, h in 1u32..10,
    ) {
        let r = Rect::new(col, row, w, h);
        let cells: Vec<(u32, u32)> = r.cells().collect();
        prop_assert_eq!(cells.len() as u32, r.area());
        let set: std::collections::HashSet<_> = cells.iter().collect();
        prop_assert_eq!(set.len() as u32, r.area());
        for &(c, rr) in &cells {
            prop_assert!(r.contains(c, rr));
        }
    }
}
