//! Property-style tests for the device model: configuration round-trips,
//! readback/write-state inverses, and timing monotonicity.
//!
//! Inputs are generated from a deterministic seed sweep ([`fsim::SimRng`])
//! instead of `proptest` (no third-party crates in the build image).

use fpga::{Bitstream, ClbCell, ClbSource, ConfigPort, ConfigTiming, Device, FrameWrite, Rect};
use fsim::SimRng;

const SEEDS: u64 = 48;

fn part() -> fpga::DeviceSpec {
    fpga::device::part("VF200") // 14x14
}

/// Applying a frame write then reading cells back returns exactly the
/// written configuration.
#[test]
fn config_write_read_roundtrip() {
    for seed in 0..SEEDS {
        let mut rng = SimRng::new(seed);
        let col = rng.below(14) as u32;
        let row0 = rng.below(10) as u32;
        let n = 1 + rng.below(3) as usize;
        let cells: Vec<Option<ClbCell>> = (0..n)
            .map(|_| Some(ClbCell::comb(rng.next_u64() as u16, [ClbSource::None; 4])))
            .collect();
        let bs = Bitstream::new(
            "p",
            vec![FrameWrite {
                col,
                row0,
                cells: cells.clone(),
            }],
            vec![],
            false,
        );
        let mut d = Device::new(part(), ConfigPort::SerialFast);
        d.apply(&bs).unwrap();
        for (k, c) in cells.iter().enumerate() {
            assert_eq!(d.cell(col, row0 + k as u32), *c, "seed {seed}");
        }
        assert_eq!(d.used_clbs(), cells.len(), "seed {seed}");
    }
}

/// readback_region / write_state_region are inverses for any region and
/// any state pattern.
#[test]
fn state_roundtrip() {
    for seed in 0..SEEDS {
        let mut rng = SimRng::new(seed);
        let col = rng.below(10) as u32;
        let row = rng.below(10) as u32;
        let w = 1 + rng.below(4) as u32;
        let h = 1 + rng.below(4) as u32;
        if col + w > 14 || row + h > 14 {
            continue;
        }
        let pattern = rng.next_u64();
        let r = Rect::new(col, row, w, h);
        let mut d = Device::new(part(), ConfigPort::SerialFast);
        // Scatter a deterministic pattern.
        let state: Vec<u64> = (0..r.area() as u64)
            .map(|i| pattern.rotate_left((i % 63) as u32))
            .collect();
        d.write_state_region(&r, &state);
        let (read, _) = d.readback_region(&r);
        assert_eq!(read, state, "seed {seed}");
    }
}

/// Download time is strictly monotone in the number of frames written.
#[test]
fn download_time_monotone_in_frames() {
    let spec = part();
    let t = ConfigTiming {
        spec,
        port: ConfigPort::SerialFast,
    };
    let cell = ClbCell::comb(0, [ClbSource::None; 4]);
    let mk = |frames: usize| {
        let fw: Vec<FrameWrite> = (0..frames as u32)
            .map(|c| FrameWrite {
                col: c,
                row0: 0,
                cells: vec![Some(cell); spec.rows as usize],
            })
            .collect();
        Bitstream::new("x", fw, vec![], false)
    };
    for n in 1..14usize {
        let a = t.download_time(&mk(n));
        assert_eq!(
            a,
            t.download_time(&mk(n)),
            "identical bitstreams must cost the same"
        );
        if n < 13 {
            assert!(t.download_time(&mk(n + 1)) > a, "n={n}");
        }
    }
}

/// Corrupting any frame's column invalidates the CRC.
#[test]
fn crc_catches_column_shift() {
    for seed in 0..SEEDS {
        let mut rng = SimRng::new(seed);
        let col = rng.below(13) as u32;
        let table = rng.next_u64() as u16;
        let cell = ClbCell::comb(table, [ClbSource::None; 4]);
        let mk = |col| {
            Bitstream::new(
                "p",
                vec![FrameWrite {
                    col,
                    row0: 0,
                    cells: vec![Some(cell)],
                }],
                vec![],
                false,
            )
        };
        let mut bad = mk(col);
        bad.frames[0].col += 1;
        assert!(!bad.crc_ok(), "seed {seed}");
    }
}

/// Region cells() yields exactly area() distinct in-bounds cells.
#[test]
fn region_cells_enumerate_area() {
    for seed in 0..SEEDS {
        let mut rng = SimRng::new(seed);
        let r = Rect::new(
            rng.below(20) as u32,
            rng.below(20) as u32,
            1 + rng.below(9) as u32,
            1 + rng.below(9) as u32,
        );
        let cells: Vec<(u32, u32)> = r.cells().collect();
        assert_eq!(cells.len() as u32, r.area(), "seed {seed}");
        let set: std::collections::HashSet<_> = cells.iter().collect();
        assert_eq!(set.len() as u32, r.area(), "seed {seed}");
        for &(c, rr) in &cells {
            assert!(r.contains(c, rr), "seed {seed}");
        }
    }
}
