//! Property-style tests for the CAD flow: routing conservation, placement
//! bounds, emission/relocation invariants. Inputs come from a deterministic
//! seed sweep ([`fsim::SimRng`]) instead of `proptest`.

use fsim::SimRng;
use pnr::route::RoutingFabric;
use pnr::{compile, emit_bitstream, CompileOptions, PinAssignment};

const SEEDS: u64 = 16;

fn compiled_mult(w: usize, seed: u64) -> pnr::CompiledCircuit {
    let net = netlist::library::arith::array_multiplier("m", w);
    compile(
        &net,
        CompileOptions {
            seed,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Route + release returns the fabric to its exact prior utilization
/// (conservation of channel capacity), at any feasible origin.
#[test]
fn routing_is_conservative() {
    for seed in 0..SEEDS {
        let mut rng = SimRng::new(seed);
        let ox = rng.below(10) as u32;
        let oy = rng.below(10) as u32;
        let c = compiled_mult(4, rng.next_u64());
        let mut f = RoutingFabric::new(24, 24, 12);
        let before = f.utilization();
        if let Ok(routes) = f.route_circuit(&c.placed, (ox, oy)) {
            assert!(f.utilization() >= before, "seed {seed}");
            f.release(&routes);
        }
        assert_eq!(f.utilization(), before, "seed {seed}");
    }
}

/// Emission at any origin yields a CRC-clean bitstream whose bounding rect
/// is the placement translated by the origin.
#[test]
fn emission_translates_exactly() {
    for seed in 0..SEEDS {
        let mut rng = SimRng::new(seed ^ 0xE517);
        let ox = rng.below(12) as u32;
        let oy = rng.below(12) as u32;
        let c = compiled_mult(4, rng.next_u64());
        let pins =
            PinAssignment::contiguous(c.placed.circuit.num_inputs, c.placed.circuit.outputs.len());
        let bs = emit_bitstream(&c.placed, (ox, oy), &pins, false);
        assert!(bs.crc_ok(), "seed {seed}");
        let br = bs.bounding_rect().unwrap();
        assert!(br.col >= ox && br.row >= oy, "seed {seed}");
        assert!(br.col_end() <= ox + c.placed.width, "seed {seed}");
        assert!(br.row_end() <= oy + c.placed.height, "seed {seed}");
        assert_eq!(
            bs.frame_count(),
            (br.col_end() - br.col) as usize,
            "seed {seed}"
        );
    }
}

/// The critical path is always at least one CLB delay, and the derived
/// clock leaves margin above it.
#[test]
fn critical_path_is_physical() {
    for seed in 0..SEEDS {
        let c = compiled_mult(4, seed.wrapping_mul(0x9E37_79B9).wrapping_add(seed));
        assert!(c.crit_path_ns >= pnr::CLB_DELAY_NS, "seed {seed}");
        assert!(c.clock_ns > c.crit_path_ns, "seed {seed}");
    }
}

/// Placement determinism: identical options => identical artifacts.
#[test]
fn compile_is_deterministic() {
    for seed in 0..SEEDS {
        let a = compiled_mult(4, seed);
        let b = compiled_mult(4, seed);
        assert_eq!(a.placed.coords, b.placed.coords, "seed {seed}");
        assert_eq!(a.placed.hpwl, b.placed.hpwl, "seed {seed}");
        assert_eq!(a.crit_path_ns, b.crit_path_ns, "seed {seed}");
    }
}

/// Non-proptest sanity: double-release is rejected in debug builds via the
/// underflow assertion — document the contract here by only releasing once.
#[test]
fn can_route_probe_does_not_commit() {
    let c = compiled_mult(5, 1);
    let f = RoutingFabric::new(32, 32, 12);
    let u0 = f.utilization();
    assert!(f.can_route(&c.placed, (0, 0)));
    assert_eq!(f.utilization(), u0, "probe must not commit");
}

/// Fill a fabric with circuits until congestion, then verify releases
/// restore full routability.
#[test]
fn congestion_recovers_after_release() {
    let c = compiled_mult(5, 2);
    let mut f = RoutingFabric::new(20, 20, 6);
    let mut rng = SimRng::new(3);
    let mut loaded = vec![f
        .route_circuit(&c.placed, (0, 0))
        .expect("first copy on an empty fabric must route")];
    for _ in 0..8 {
        let ox = rng.below(10) as u32;
        let oy = rng.below(10) as u32;
        if let Ok(r) = f.route_circuit(&c.placed, (ox, oy)) {
            loaded.push(r);
        }
    }
    assert!(!loaded.is_empty(), "at least one copy must route");
    for r in &loaded {
        f.release(r);
    }
    assert_eq!(f.utilization(), 0.0);
    assert!(f.can_route(&c.placed, (0, 0)));
}

/// Delta-reconfiguration equivalence, the property the vfpga swap path
/// rests on: for seeded random circuit pairs — same-family variants at
/// random similarity and entirely unrelated circuits — applying
/// `Bitstream::diff(old, new)` on a device that holds `old` leaves the
/// fabric byte-identical (per `Device::state_digest`) to a full download
/// of `new` onto a clean device.
#[test]
fn delta_apply_equals_full_download() {
    use fpga::{Bitstream, ConfigPort, Device};
    let spec = fpga::device::part("VF600");
    let opts = CompileOptions {
        max_height: spec.rows,
        full_height: true,
        ..Default::default()
    };
    let library: Vec<netlist::Netlist> = vec![
        netlist::library::arith::ripple_adder("dp-add8", 8),
        netlist::library::seq::lfsr("dp-lfsr", 16, 0b1101_0000_0000_1000),
        netlist::library::codes::crc_comb("dp-crc8", netlist::library::codes::CRC8, 8, 8),
        netlist::library::alu::alu("dp-alu4", 4),
        netlist::library::arith::array_multiplier("dp-m4", 4),
    ];
    let compiled: Vec<pnr::CompiledCircuit> =
        library.iter().map(|n| compile(n, opts).unwrap()).collect();
    let emit = |c: &pnr::CompiledCircuit, origin: (u32, u32)| {
        let pins =
            PinAssignment::contiguous(c.placed.circuit.num_inputs, c.placed.circuit.outputs.len());
        emit_bitstream(&c.placed, origin, &pins, false)
    };
    let mut variant_cases = 0usize;
    let mut cross_cases = 0usize;
    for seed in 0..SEEDS {
        let mut rng = SimRng::new(seed ^ 0xDE17A0);
        let i = rng.below(compiled.len() as u64) as usize;
        let old_c = &compiled[i];
        let new_c = if rng.chance(0.5) {
            variant_cases += 1;
            let f = 0.1 + 0.9 * (rng.below(1000) as f64 / 1000.0);
            pnr::mutate_tables(old_c, f, rng.next_u64())
        } else {
            cross_cases += 1;
            compiled[rng.below(compiled.len() as u64) as usize].clone()
        };
        let origin = (rng.below(3) as u32, 0);
        let old_bs = emit(old_c, origin);
        let new_bs = emit(&new_c, origin);
        let delta = Bitstream::diff(&old_bs, &new_bs);

        let mut via_delta = Device::new(spec, ConfigPort::Parallel8);
        via_delta
            .apply(&old_bs)
            .unwrap_or_else(|e| panic!("seed {seed}: old apply: {e:?}"));
        if !delta.is_identical() {
            via_delta
                .apply(&delta.stream)
                .unwrap_or_else(|e| panic!("seed {seed}: delta apply: {e:?}"));
        }
        let mut via_full = Device::new(spec, ConfigPort::Parallel8);
        via_full
            .apply(&new_bs)
            .unwrap_or_else(|e| panic!("seed {seed}: full apply: {e:?}"));
        assert_eq!(
            via_delta.state_digest(),
            via_full.state_digest(),
            "seed {seed}: delta-configured fabric diverges from full download"
        );
        // Pricing sanity: the delta never writes more frames than the
        // full image of `new`.
        assert!(
            delta.changed_frames <= new_bs.frame_count() + old_bs.frame_count(),
            "seed {seed}"
        );
    }
    assert!(
        variant_cases > 0 && cross_cases > 0,
        "both pair kinds must occur"
    );
}
