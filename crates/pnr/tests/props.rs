//! Property-based tests for the CAD flow: routing conservation, placement
//! bounds, emission/relocation invariants.

use fsim::SimRng;
use pnr::route::RoutingFabric;
use pnr::{compile, emit_bitstream, CompileOptions, PinAssignment};
use proptest::prelude::*;

fn compiled_mult(w: usize, seed: u64) -> pnr::CompiledCircuit {
    let net = netlist::library::arith::array_multiplier("m", w);
    compile(&net, CompileOptions { seed, ..Default::default() }).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Route + release returns the fabric to its exact prior utilization
    /// (conservation of channel capacity), at any feasible origin.
    #[test]
    fn routing_is_conservative(seed in any::<u64>(), ox in 0u32..10, oy in 0u32..10) {
        let c = compiled_mult(4, seed);
        let mut f = RoutingFabric::new(24, 24, 12);
        let before = f.utilization();
        if let Ok(routes) = f.route_circuit(&c.placed, (ox, oy)) {
            prop_assert!(f.utilization() >= before);
            f.release(&routes);
        }
        prop_assert_eq!(f.utilization(), before);
    }

    /// Emission at any origin yields a CRC-clean bitstream whose bounding
    /// rect is the placement translated by the origin.
    #[test]
    fn emission_translates_exactly(ox in 0u32..12, oy in 0u32..12, seed in any::<u64>()) {
        let c = compiled_mult(4, seed);
        let pins = PinAssignment::contiguous(
            c.placed.circuit.num_inputs,
            c.placed.circuit.outputs.len(),
        );
        let bs = emit_bitstream(&c.placed, (ox, oy), &pins, false);
        prop_assert!(bs.crc_ok());
        let br = bs.bounding_rect().unwrap();
        prop_assert!(br.col >= ox && br.row >= oy);
        prop_assert!(br.col_end() <= ox + c.placed.width);
        prop_assert!(br.row_end() <= oy + c.placed.height);
        prop_assert_eq!(bs.frame_count(), (br.col_end() - br.col) as usize);
    }

    /// The critical path never decreases when the same circuit is placed
    /// into a larger region with the same seed (wire delay can only grow
    /// or match once blocks spread out), and is always at least one CLB.
    #[test]
    fn critical_path_is_physical(seed in any::<u64>()) {
        let c = compiled_mult(4, seed);
        prop_assert!(c.crit_path_ns >= pnr::CLB_DELAY_NS);
        prop_assert!(c.clock_ns > c.crit_path_ns);
    }

    /// Placement determinism: identical options => identical artifacts.
    #[test]
    fn compile_is_deterministic(seed in any::<u64>()) {
        let a = compiled_mult(4, seed);
        let b = compiled_mult(4, seed);
        prop_assert_eq!(a.placed.coords, b.placed.coords);
        prop_assert_eq!(a.placed.hpwl, b.placed.hpwl);
        prop_assert_eq!(a.crit_path_ns, b.crit_path_ns);
    }
}

/// Non-proptest sanity: double-release is rejected in debug builds via the
/// underflow assertion — document the contract here by only releasing once.
#[test]
fn can_route_probe_does_not_commit() {
    let c = compiled_mult(5, 1);
    let f = RoutingFabric::new(32, 32, 12);
    let u0 = f.utilization();
    assert!(f.can_route(&c.placed, (0, 0)));
    assert_eq!(f.utilization(), u0, "probe must not commit");
}

/// Fill a fabric with circuits until congestion, then verify releases
/// restore full routability.
#[test]
fn congestion_recovers_after_release() {
    let c = compiled_mult(5, 2);
    let mut f = RoutingFabric::new(20, 20, 6);
    let mut rng = SimRng::new(3);
    let mut loaded = vec![f
        .route_circuit(&c.placed, (0, 0))
        .expect("first copy on an empty fabric must route")];
    for _ in 0..8 {
        let ox = rng.below(10) as u32;
        let oy = rng.below(10) as u32;
        if let Ok(r) = f.route_circuit(&c.placed, (ox, oy)) {
            loaded.push(r);
        }
    }
    assert!(!loaded.is_empty(), "at least one copy must route");
    for r in &loaded {
        f.release(r);
    }
    assert_eq!(f.utilization(), 0.0);
    assert!(f.can_route(&c.placed, (0, 0)));
}
