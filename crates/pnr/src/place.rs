//! Region-constrained placement.
//!
//! Places a [`PackedCircuit`]'s blocks into a `w × h` rectangle: a greedy
//! topological seed followed by simulated annealing on half-perimeter
//! wirelength (HPWL). Placement is *region-relative* — coordinates start
//! at (0,0) — which is what makes the result relocatable: the OS can drop
//! the same placement at any origin that routes (paper §4's relocatable
//! circuits).

use crate::pack::{BlockSource, PackedCircuit};
use fsim::SimRng;

/// Placement failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The region has fewer CLBs than the circuit has blocks.
    RegionTooSmall {
        /// Blocks to place.
        blocks: usize,
        /// CLBs available.
        capacity: usize,
    },
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::RegionTooSmall { blocks, capacity } => {
                write!(f, "{blocks} blocks cannot fit in {capacity} CLBs")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// A placed circuit: the packed blocks plus region-relative coordinates.
#[derive(Debug, Clone)]
pub struct PlacedCircuit {
    /// The packed circuit.
    pub circuit: PackedCircuit,
    /// Region width in CLB columns.
    pub width: u32,
    /// Region height in CLB rows.
    pub height: u32,
    /// Block index → region-relative `(col, row)`.
    pub coords: Vec<(u32, u32)>,
    /// Final half-perimeter wirelength (diagnostic).
    pub hpwl: u64,
}

impl PlacedCircuit {
    /// The region shape as a rect at origin.
    pub fn shape(&self) -> fpga::Rect {
        fpga::Rect::new(0, 0, self.width, self.height)
    }

    /// Number of CLBs occupied.
    pub fn block_count(&self) -> usize {
        self.circuit.blocks.len()
    }
}

/// Block-to-block nets as (driver, sink) pairs.
fn edges(pc: &PackedCircuit) -> Vec<(u32, u32)> {
    let mut es = Vec::new();
    for (i, blk) in pc.blocks.iter().enumerate() {
        for s in blk.inputs {
            if let BlockSource::Block(j) = s {
                es.push((j, i as u32));
            }
        }
    }
    es
}

fn hpwl_of(edges: &[(u32, u32)], coords: &[(u32, u32)]) -> u64 {
    edges
        .iter()
        .map(|&(a, b)| {
            let (ax, ay) = coords[a as usize];
            let (bx, by) = coords[b as usize];
            (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
        })
        .sum()
}

/// Place `pc` into a `w × h` region.
///
/// Deterministic for a given `(circuit, shape, rng seed)`.
pub fn place(
    pc: &PackedCircuit,
    w: u32,
    h: u32,
    rng: &mut SimRng,
) -> Result<PlacedCircuit, PlaceError> {
    let n = pc.blocks.len();
    let cap = (w * h) as usize;
    if n > cap {
        return Err(PlaceError::RegionTooSmall {
            blocks: n,
            capacity: cap,
        });
    }
    let es = edges(pc);

    // Greedy seed: blocks in index order (already topological-ish from
    // packing) snake through the region so connected blocks start near
    // each other.
    let mut coords: Vec<(u32, u32)> = Vec::with_capacity(n);
    let mut free: Vec<(u32, u32)> = Vec::with_capacity(cap);
    for r in 0..h {
        if r % 2 == 0 {
            for c in 0..w {
                free.push((c, r));
            }
        } else {
            for c in (0..w).rev() {
                free.push((c, r));
            }
        }
    }
    coords.extend(free.iter().copied().take(n));
    let empties: Vec<(u32, u32)> = free[n..].to_vec();

    // Occupancy map: cell -> Some(block) | None.
    let mut occ: Vec<Option<u32>> = vec![None; cap];
    let at = |c: u32, r: u32| (r * w + c) as usize;
    for (i, &(c, r)) in coords.iter().enumerate() {
        occ[at(c, r)] = Some(i as u32);
    }
    drop(empties);

    // Annealing: swap two cells (block-block or block-empty).
    let mut cost = hpwl_of(&es, &coords);
    if n >= 2 && !es.is_empty() {
        let moves = (n * 120).clamp(2_000, 150_000);
        let mut temp = (cost as f64 / es.len() as f64).max(1.0);
        let cooling = (0.005f64 / temp).powf(1.0 / moves as f64);
        for _ in 0..moves {
            // Pick a random block and a random target cell.
            let bi = rng.below(n as u64) as usize;
            let (bc, br) = coords[bi];
            let tc = rng.below(w as u64) as u32;
            let tr = rng.below(h as u64) as u32;
            if (tc, tr) == (bc, br) {
                continue;
            }
            let other = occ[at(tc, tr)];

            // Delta cost: recompute edges touching the moved block(s).
            fn touches(es: &[(u32, u32)], coords: &[(u32, u32)], blk: u32) -> u64 {
                es.iter()
                    .filter(|&&(a, b)| a == blk || b == blk)
                    .map(|&(a, b)| {
                        let (ax, ay) = coords[a as usize];
                        let (bx, by) = coords[b as usize];
                        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
                    })
                    .sum()
            }
            let pair_cost = |coords: &[(u32, u32)]| {
                touches(&es, coords, bi as u32)
                    + other.map_or(0, |o| {
                        if o as usize != bi {
                            touches(&es, coords, o)
                        } else {
                            0
                        }
                    })
            };
            let before = pair_cost(&coords);
            // Apply tentatively.
            coords[bi] = (tc, tr);
            if let Some(o) = other {
                coords[o as usize] = (bc, br);
            }
            let after = pair_cost(&coords);

            let accept = if after <= before {
                true
            } else {
                let delta = (after - before) as f64;
                rng.f64() < (-delta / temp).exp()
            };
            if accept {
                occ[at(bc, br)] = other;
                occ[at(tc, tr)] = Some(bi as u32);
                cost = cost + after - before;
            } else {
                // Revert.
                coords[bi] = (bc, br);
                if let Some(o) = other {
                    coords[o as usize] = (tc, tr);
                }
            }
            temp *= cooling;
        }
    }

    debug_assert_eq!(cost, hpwl_of(&es, &coords), "incremental cost drifted");
    Ok(PlacedCircuit {
        circuit: pc.clone(),
        width: w,
        height: h,
        coords,
        hpwl: cost,
    })
}

/// Choose a near-square region shape for `blocks` CLBs at the given fill
/// target (e.g. 0.85 leaves annealing slack), clamped to the device height.
pub fn auto_shape(blocks: usize, fill: f64, max_h: u32) -> (u32, u32) {
    assert!(blocks > 0);
    assert!((0.1..=1.0).contains(&fill));
    let want = (blocks as f64 / fill).ceil() as u32;
    let mut h = (want as f64).sqrt().ceil() as u32;
    h = h.clamp(1, max_h);
    let w = want.div_ceil(h).max(1);
    (w, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack;
    use netlist::{map_to_luts, MapOptions};

    fn placed(net: &netlist::Netlist, w: u32, h: u32, seed: u64) -> PlacedCircuit {
        let pc = pack(&map_to_luts(net, MapOptions::default()));
        place(&pc, w, h, &mut SimRng::new(seed)).unwrap()
    }

    #[test]
    fn all_blocks_inside_and_distinct() {
        let net = netlist::library::arith::array_multiplier("m5", 5);
        let p = placed(&net, 12, 12, 1);
        let mut seen = std::collections::HashSet::new();
        for &(c, r) in &p.coords {
            assert!(c < 12 && r < 12, "({c},{r}) outside region");
            assert!(seen.insert((c, r)), "cell ({c},{r}) double-booked");
        }
        assert_eq!(p.coords.len(), p.block_count());
    }

    #[test]
    fn too_small_region_is_rejected() {
        let net = netlist::library::arith::array_multiplier("m6", 6);
        let pc = pack(&map_to_luts(&net, MapOptions::default()));
        let err = place(&pc, 2, 2, &mut SimRng::new(1)).unwrap_err();
        assert!(matches!(err, PlaceError::RegionTooSmall { .. }));
    }

    #[test]
    fn annealing_beats_or_matches_random_seed() {
        // Compare final HPWL against the HPWL of the greedy seed alone by
        // re-deriving the seed cost: annealing must not make things worse.
        let net = netlist::library::arith::array_multiplier("m6", 6);
        let pc = pack(&map_to_luts(&net, MapOptions::default()));
        let es = super::edges(&pc);
        let n = pc.blocks.len();
        let (w, h) = auto_shape(n, 0.8, 24);
        // Seed coords = snake order (same construction as place()).
        let mut seed_coords = Vec::with_capacity(n);
        'outer: for r in 0..h {
            let cols: Vec<u32> = if r % 2 == 0 {
                (0..w).collect()
            } else {
                (0..w).rev().collect()
            };
            for c in cols {
                seed_coords.push((c, r));
                if seed_coords.len() == n {
                    break 'outer;
                }
            }
        }
        let seed_cost = super::hpwl_of(&es, &seed_coords);
        let p = place(&pc, w, h, &mut SimRng::new(7)).unwrap();
        assert!(
            p.hpwl <= seed_cost,
            "annealing regressed: {} > seed {}",
            p.hpwl,
            seed_cost
        );
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let net = netlist::library::logic::popcount("pc12", 12);
        let a = placed(&net, 8, 8, 42);
        let b = placed(&net, 8, 8, 42);
        assert_eq!(a.coords, b.coords);
        assert_eq!(a.hpwl, b.hpwl);
    }

    #[test]
    fn auto_shape_fits_and_is_squarish() {
        let (w, h) = auto_shape(50, 0.85, 32);
        assert!((w * h) as f64 * 0.85 >= 50.0 - 1.0);
        assert!(w.abs_diff(h) <= 3);
        // Clamped height.
        let (w2, h2) = auto_shape(100, 1.0, 4);
        assert_eq!(h2, 4);
        assert!(w2 * h2 >= 100);
    }

    #[test]
    fn single_block_circuit_places() {
        let mut b = netlist::Builder::new("one");
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y);
        b.output("a", a);
        let net = b.finish();
        let p = placed(&net, 1, 1, 3);
        assert_eq!(p.coords, vec![(0, 0)]);
        assert_eq!(p.hpwl, 0);
    }
}
