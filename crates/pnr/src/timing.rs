//! Critical-path estimation.
//!
//! The paper's §3 requires the OS to know when a downloaded combinational
//! circuit has finished: "this time can be estimated a priori by the
//! compiler of the FPGA configuration". This module is that estimator: the
//! longest register-to-register / input-to-output path through the placed
//! circuit, charging a fixed CLB delay per block plus a Manhattan wire
//! delay per hop between placed blocks.

use crate::pack::BlockSource;
use crate::place::PlacedCircuit;

/// Propagation delay through one CLB (LUT + local mux), nanoseconds.
pub const CLB_DELAY_NS: f64 = 4.5;
/// Wire delay per Manhattan grid hop, nanoseconds.
pub const WIRE_DELAY_PER_HOP_NS: f64 = 1.2;
/// Margin factor applied when deriving a clock period from the critical path.
pub const CLOCK_MARGIN: f64 = 1.2;

/// Longest combinational path through the placed circuit, in nanoseconds.
///
/// Paths start at primary inputs, constants, and FF outputs, and end at
/// primary outputs and FF data inputs. Registered blocks contribute their
/// CLB delay to the path that *ends* at them.
pub fn critical_path_ns(placed: &PlacedCircuit) -> f64 {
    let blocks = &placed.circuit.blocks;
    let n = blocks.len();
    // arrival[i] = worst-case time at block i's LUT output.
    let mut arrival = vec![0.0f64; n];
    // Blocks are not guaranteed topologically ordered after packing
    // (route-throughs appended at the end), so iterate to a fixed point.
    // Combinational cycles are impossible (LUT networks are validated
    // acyclic and packing preserves direction), so |blocks| passes bound it.
    let mut changed = true;
    let mut guard = 0;
    while changed {
        changed = false;
        guard += 1;
        assert!(guard <= n + 1, "timing graph has a combinational cycle");
        for i in 0..n {
            let mut worst_in = 0.0f64;
            for s in blocks[i].inputs {
                if let BlockSource::Block(j) = s {
                    let j = j as usize;
                    // Registered source: sequential edge, arrival restarts.
                    if blocks[j].out_from_ff {
                        continue;
                    }
                    let (jc, jr) = placed.coords[j];
                    let (ic, ir) = placed.coords[i];
                    let hops = jc.abs_diff(ic) + jr.abs_diff(ir);
                    let t = arrival[j] + hops as f64 * WIRE_DELAY_PER_HOP_NS;
                    worst_in = worst_in.max(t);
                }
            }
            let a = worst_in + CLB_DELAY_NS;
            if a > arrival[i] {
                arrival[i] = a;
                changed = true;
            }
        }
    }
    arrival.into_iter().fold(0.0, f64::max)
}

/// Clock period (ns) this circuit can run at, with margin.
pub fn clock_period_ns(placed: &PlacedCircuit) -> f64 {
    critical_path_ns(placed) * CLOCK_MARGIN
}

/// Nanoseconds to run `cycles` synchronous cycles.
pub fn execution_time_ns(placed: &PlacedCircuit, cycles: u64) -> f64 {
    clock_period_ns(placed) * cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack;
    use crate::place::{auto_shape, place};
    use fsim::SimRng;
    use netlist::{map_to_luts, MapOptions};

    fn compile(net: &netlist::Netlist) -> PlacedCircuit {
        let pc = pack(&map_to_luts(net, MapOptions::default()));
        let (w, h) = auto_shape(pc.blocks.len(), 0.8, 32);
        place(&pc, w, h, &mut SimRng::new(1)).unwrap()
    }

    #[test]
    fn single_lut_cost_is_one_clb_delay() {
        let mut b = netlist::Builder::new("one");
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y);
        b.output("a", a);
        let p = compile(&b.finish());
        assert_eq!(critical_path_ns(&p), CLB_DELAY_NS);
    }

    #[test]
    fn deeper_circuits_have_longer_paths() {
        let add4 = compile(&netlist::library::arith::ripple_adder("a4", 4));
        let add16 = compile(&netlist::library::arith::ripple_adder("a16", 16));
        assert!(
            critical_path_ns(&add16) > critical_path_ns(&add4) * 2.0,
            "16-bit ripple must be much slower than 4-bit: {} vs {}",
            critical_path_ns(&add16),
            critical_path_ns(&add4)
        );
    }

    #[test]
    fn registered_circuits_cut_paths_at_ffs() {
        // A pipelined FIR's critical path is one tap stage, far below the
        // sum of all stages.
        let f = compile(&netlist::library::dsp::fir("f", 8, &[1, 2, 1]));
        let cp = critical_path_ns(&f);
        let depth_bound = f.circuit.blocks.len() as f64 * CLB_DELAY_NS;
        assert!(cp < depth_bound / 2.0, "FF cuts must shorten the path");
        assert!(cp >= CLB_DELAY_NS);
    }

    #[test]
    fn clock_and_execution_time() {
        let p = compile(&netlist::library::arith::ripple_adder("a8", 8));
        let period = clock_period_ns(&p);
        assert!(period > critical_path_ns(&p));
        assert_eq!(execution_time_ns(&p, 100), period * 100.0);
    }

    #[test]
    fn wire_delay_matters() {
        // The same circuit placed in a huge region (blocks forced apart by
        // a sparse snake seed) should not be *faster* than a tight one.
        let net = netlist::library::logic::parity("p16", 16);
        let pc = pack(&map_to_luts(&net, MapOptions::default()));
        let tight = place(&pc, 3, 3, &mut SimRng::new(1)).unwrap();
        let mut sparse = place(&pc, 20, 20, &mut SimRng::new(1)).unwrap();
        // Force worst case: spread blocks to corners deterministically.
        for (i, c) in sparse.coords.iter_mut().enumerate() {
            *c = if i % 2 == 0 {
                (0, (i as u32) % 20)
            } else {
                (19, (i as u32) % 20)
            };
        }
        assert!(critical_path_ns(&sparse) > critical_path_ns(&tight));
    }
}
