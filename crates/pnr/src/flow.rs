//! The complete compilation flow: gate netlist → relocatable placed
//! circuit with timing.
//!
//! [`compile`] is what the workload generators and the OS call; it chains
//! mapping, packing, shape selection, placement, and timing analysis, and
//! records the artifacts every experiment consumes (block count, state
//! size, I/O width, critical path, bitstream-frame footprint).

use crate::pack::{pack, PackedCircuit};
use crate::place::{auto_shape, place, PlaceError, PlacedCircuit};
use crate::timing::{clock_period_ns, critical_path_ns};
use fsim::{span, SimRng};
use netlist::{map_to_luts, MapOptions, Netlist};

/// Options for the compilation flow.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// LUT mapping options.
    pub map: MapOptions,
    /// Placement fill target (lower = more annealing slack).
    pub fill: f64,
    /// Maximum region height (device rows).
    pub max_height: u32,
    /// Placement seed.
    pub seed: u64,
    /// Optional fixed region shape `(w, h)`; `None` selects automatically.
    pub shape: Option<(u32, u32)>,
    /// Use the full `max_height` rows and grow in columns only — the shape
    /// column-partition managers need (partitions span full device height).
    pub full_height: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            map: MapOptions::default(),
            fill: 0.85,
            max_height: 32,
            seed: 0x5EED,
            shape: None,
            full_height: false,
        }
    }
}

/// A fully compiled circuit, ready for bitstream emission at any origin.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    /// The placed circuit.
    pub placed: PlacedCircuit,
    /// Critical path in nanoseconds.
    pub crit_path_ns: f64,
    /// Derived clock period in nanoseconds (with margin).
    pub clock_ns: f64,
}

impl CompiledCircuit {
    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.placed.circuit.name
    }

    /// CLBs occupied.
    pub fn blocks(&self) -> usize {
        self.placed.circuit.blocks.len()
    }

    /// Flip-flop count (state bits).
    pub fn state_bits(&self) -> usize {
        self.placed.circuit.ff_count()
    }

    /// Region shape `(w, h)`.
    pub fn shape(&self) -> (u32, u32) {
        (self.placed.width, self.placed.height)
    }

    /// External I/O count (inputs + outputs).
    pub fn io_count(&self) -> usize {
        self.placed.circuit.num_inputs + self.placed.circuit.outputs.len()
    }

    /// Whether the circuit holds state (sequential).
    pub fn is_sequential(&self) -> bool {
        self.placed.circuit.is_sequential()
    }

    /// Nanoseconds to run `cycles` cycles at the derived clock (the clock
    /// period is rounded up to a whole nanosecond, as a real clock
    /// generator would quantize it).
    pub fn run_ns(&self, cycles: u64) -> u64 {
        self.clock_ns.ceil() as u64 * cycles
    }
}

/// Compile a gate netlist down to a relocatable placed circuit.
///
/// The flow phases record `pnr;map` / `pnr;pack` / `pnr;place` /
/// `pnr;timing` spans into the ambient [`fsim::span`] profiler when a
/// harness has recording enabled (see [`fsim::span::scoped`]); with
/// recording off the guards are free.
pub fn compile(net: &Netlist, opts: CompileOptions) -> Result<CompiledCircuit, PlaceError> {
    let _flow = span::guard("pnr");
    let mapped = span::time("map", || map_to_luts(net, opts.map));
    let packed: PackedCircuit = span::time("pack", || pack(&mapped));
    let (w, h) = opts.shape.unwrap_or_else(|| {
        let blocks = packed.blocks.len().max(1);
        if opts.full_height {
            let want = (blocks as f64 / opts.fill).ceil() as u32;
            (want.div_ceil(opts.max_height).max(1), opts.max_height)
        } else {
            auto_shape(blocks, opts.fill, opts.max_height)
        }
    });
    let mut rng = SimRng::new(opts.seed);
    let placed = span::time("place", || place(&packed, w, h, &mut rng))?;
    let (crit, clock) = span::time("timing", || {
        (critical_path_ns(&placed), clock_period_ns(&placed))
    });
    Ok(CompiledCircuit {
        placed,
        crit_path_ns: crit,
        clock_ns: clock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_representative_library() {
        let circuits: Vec<Netlist> = vec![
            netlist::library::arith::ripple_adder("add8", 8),
            netlist::library::arith::array_multiplier("mul6", 6),
            netlist::library::codes::crc_comb("crc8", netlist::library::codes::CRC8, 8, 8),
            netlist::library::seq::lfsr("lfsr16", 16, 0b1101_0000_0000_1000),
            netlist::library::dsp::fir("fir", 6, &[1, 2, 2, 1]),
            netlist::library::alu::alu("alu8", 8),
        ];
        for net in &circuits {
            let c = compile(net, CompileOptions::default()).unwrap();
            assert!(c.blocks() > 0, "{}", c.name());
            assert!(c.crit_path_ns > 0.0);
            assert!(c.clock_ns > c.crit_path_ns);
            let (w, h) = c.shape();
            assert!((w * h) as usize >= c.blocks());
        }
    }

    #[test]
    fn fixed_shape_is_respected() {
        let net = netlist::library::logic::parity("p8", 8);
        let c = compile(
            &net,
            CompileOptions {
                shape: Some((4, 2)),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(c.shape(), (4, 2));
    }

    #[test]
    fn too_small_fixed_shape_errors() {
        let net = netlist::library::arith::array_multiplier("m8", 8);
        let r = compile(
            &net,
            CompileOptions {
                shape: Some((2, 2)),
                ..Default::default()
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let net = netlist::library::arith::ripple_adder("a8", 8);
        let a = compile(&net, CompileOptions::default()).unwrap();
        let b = compile(&net, CompileOptions::default()).unwrap();
        assert_eq!(a.placed.coords, b.placed.coords);
        assert_eq!(a.crit_path_ns, b.crit_path_ns);
    }

    #[test]
    fn run_ns_scales_linearly() {
        let net = netlist::library::seq::counter("c8", 8);
        let c = compile(&net, CompileOptions::default()).unwrap();
        assert_eq!(c.run_ns(1000), c.run_ns(1) * 1000);
        assert!(c.is_sequential());
        assert_eq!(c.state_bits(), 8);
    }
}
