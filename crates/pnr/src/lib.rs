//! # pnr — the mini CAD flow
//!
//! Turns a technology-mapped [`netlist::LutNetwork`] into a *relocatable
//! placed circuit* and ultimately into device [`fpga::Bitstream`]s:
//!
//! 1. [`pack`] — pair flip-flops with their driving LUTs into CLB-shaped
//!    blocks (XC4000 style), inserting route-throughs where needed,
//! 2. [`mod@place`] — region-constrained placement: greedy seed + simulated
//!    annealing on half-perimeter wirelength,
//! 3. [`route`] — maze routing over the device's channel graph with finite
//!    capacity and congestion negotiation; routing is *origin-dependent*,
//!    which is exactly the paper's §4 warning that "circuit relocation is
//!    more difficult to be formalized and standardized than classical code
//!    relocation",
//! 4. [`timing`] — critical-path estimation (CLB + wire delay), the OS's
//!    a-priori completion estimate from §3,
//! 5. [`emit`] — frame-organized bitstream generation at any origin, with
//!    pins bound at emission time (so the OS can rebind I/O per load).
//!
//! [`flow::compile`] chains the whole pipeline.

pub mod cache;
pub mod disk;
pub mod emit;
pub mod flow;
pub mod pack;
pub mod place;
pub mod route;
pub mod timing;
pub mod variant;

pub use cache::{cache_len, cache_stats, compile_shared, CacheStats};
pub use disk::{compile_with_disk, DISK_SCHEMA};
pub use emit::{emit_bitstream, PinAssignment};
pub use flow::{compile, CompileOptions, CompiledCircuit};
pub use pack::{BlockSource, PackedBlock, PackedCircuit};
pub use place::{place, PlaceError, PlacedCircuit};
pub use route::{RouteError, RoutingFabric};
pub use timing::{critical_path_ns, CLB_DELAY_NS, WIRE_DELAY_PER_HOP_NS};
pub use variant::mutate_tables;
