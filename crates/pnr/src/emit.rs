//! Bitstream emission.
//!
//! Converts a [`PlacedCircuit`] into a device [`Bitstream`] at a chosen
//! origin, binding primary inputs/outputs to physical pins at emission
//! time. Emission at different origins produces different bitstreams from
//! the same placement — the *relocatable circuit* of the paper's §4.

use crate::pack::BlockSource;
use crate::place::PlacedCircuit;
use fpga::{Bitstream, ClbCell, ClbSource, FrameWrite, IobConfig};

/// Physical pin bindings for a circuit's virtual I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinAssignment {
    /// Physical pin for each primary input bit.
    pub inputs: Vec<u32>,
    /// Physical pin for each primary output (declaration order).
    pub outputs: Vec<u32>,
}

impl PinAssignment {
    /// The identity assignment: inputs on pins `0..n`, outputs following.
    pub fn contiguous(n_inputs: usize, n_outputs: usize) -> Self {
        PinAssignment {
            inputs: (0..n_inputs as u32).collect(),
            outputs: (n_inputs as u32..(n_inputs + n_outputs) as u32).collect(),
        }
    }
}

/// Emit the bitstream configuring `placed` at `origin`.
///
/// * `full = true` emits a whole-device stream (dynamic loading over the
///   slow serial port); `false` emits a partial stream touching only the
///   circuit's frames.
///
/// # Panics
/// Panics if the pin assignment widths don't match the circuit.
pub fn emit_bitstream(
    placed: &PlacedCircuit,
    origin: (u32, u32),
    pins: &PinAssignment,
    full: bool,
) -> Bitstream {
    assert_eq!(
        pins.inputs.len(),
        placed.circuit.num_inputs,
        "input pin count mismatch"
    );
    assert_eq!(
        pins.outputs.len(),
        placed.circuit.outputs.len(),
        "output pin count mismatch"
    );

    let abs = |rel: (u32, u32)| (rel.0 + origin.0, rel.1 + origin.1);

    // Build cells keyed by absolute coordinates.
    let mut cells: Vec<((u32, u32), ClbCell)> = Vec::with_capacity(placed.circuit.blocks.len());
    for (i, blk) in placed.circuit.blocks.iter().enumerate() {
        let mut inputs = [ClbSource::None; 4];
        for (k, s) in blk.inputs.iter().enumerate() {
            inputs[k] = match *s {
                BlockSource::None => ClbSource::None,
                BlockSource::Const(c) => ClbSource::Const(c),
                BlockSource::Input(b) => ClbSource::Pin(pins.inputs[b as usize]),
                BlockSource::Block(j) => {
                    let (c, r) = abs(placed.coords[j as usize]);
                    ClbSource::Clb(c, r)
                }
            };
        }
        let cell = ClbCell {
            lut_table: blk.lut_table,
            inputs,
            has_ff: blk.ff.is_some(),
            ff_init: blk.ff.unwrap_or(false),
            out_from_ff: blk.out_from_ff,
        };
        cells.push((abs(placed.coords[i]), cell));
    }

    // Group into per-column frames with contiguous row runs.
    cells.sort_by_key(|&((c, r), _)| (c, r));
    let mut frames: Vec<FrameWrite> = Vec::new();
    for ((c, r), cell) in cells {
        match frames.last_mut() {
            Some(f) if f.col == c && f.row0 + f.cells.len() as u32 == r => {
                f.cells.push(Some(cell));
            }
            _ => frames.push(FrameWrite {
                col: c,
                row0: r,
                cells: vec![Some(cell)],
            }),
        }
    }

    // IOBs.
    let mut iobs: Vec<(u32, IobConfig)> = Vec::new();
    for &p in &pins.inputs {
        iobs.push((p, IobConfig::Input));
    }
    for (o, &p) in pins.outputs.iter().enumerate() {
        let (_, blk) = &placed.circuit.outputs[o];
        let (c, r) = abs(placed.coords[*blk as usize]);
        iobs.push((p, IobConfig::Output(c, r)));
    }

    Bitstream::new(placed.circuit.name.clone(), frames, iobs, full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack;
    use crate::place::{auto_shape, place};
    use fpga::{ConfigPort, Device, FabricView, Rect};
    use fsim::SimRng;
    use netlist::{map_to_luts, MapOptions};
    use std::collections::HashMap;

    fn compile(net: &netlist::Netlist, seed: u64) -> PlacedCircuit {
        let pc = pack(&map_to_luts(net, MapOptions::default()));
        let (w, h) = auto_shape(pc.blocks.len(), 0.8, 20);
        place(&pc, w, h, &mut SimRng::new(seed)).unwrap()
    }

    /// End-to-end: netlist -> map -> pack -> place -> emit -> device ->
    /// fabric execution must equal golden software model.
    #[test]
    fn adder_runs_on_fabric_end_to_end() {
        let w = 4;
        let net = netlist::library::arith::ripple_adder("a4", w);
        let placed = compile(&net, 3);
        let pins = PinAssignment::contiguous(net.num_inputs(), net.outputs().len());
        let bs = emit_bitstream(&placed, (2, 2), &pins, false);

        let mut dev = Device::new(fpga::device::part("VF400"), ConfigPort::SerialFast);
        dev.apply(&bs).unwrap();
        let mut view = FabricView::resolve(&dev, dev.spec().full_rect()).unwrap();

        for a in 0..16u64 {
            for b in (0..16u64).step_by(5) {
                let mut pinvals: HashMap<u32, u64> = HashMap::new();
                for i in 0..w {
                    pinvals.insert(pins.inputs[i], (a >> i) & 1);
                    pinvals.insert(pins.inputs[w + i], (b >> i) & 1);
                }
                view.eval(&dev, &pinvals);
                let mut sum = 0u64;
                for (i, &p) in pins.outputs.iter().enumerate().take(w) {
                    sum |= (view.output(&dev, p) & 1) << i;
                }
                let cout = view.output(&dev, pins.outputs[w]) & 1;
                let (gs, gc) = netlist::library::arith::golden_add(a, b, w);
                assert_eq!(sum, gs, "{a}+{b}");
                assert_eq!(cout, gc as u64, "carry {a}+{b}");
            }
        }
    }

    #[test]
    fn sequential_circuit_runs_on_fabric() {
        let net = netlist::library::seq::counter("c4", 4);
        let placed = compile(&net, 5);
        let pins = PinAssignment::contiguous(1, 4);
        let bs = emit_bitstream(&placed, (0, 0), &pins, false);

        let mut dev = Device::new(fpga::device::part("VF100"), ConfigPort::SerialFast);
        dev.apply(&bs).unwrap();
        let mut view = FabricView::resolve(&dev, dev.spec().full_rect()).unwrap();
        let en: HashMap<u32, u64> = [(pins.inputs[0], 1u64)].into_iter().collect();

        let mut expect = 0u64;
        for step in 0..20 {
            view.eval(&dev, &en);
            let mut q = 0u64;
            for (i, &p) in pins.outputs.iter().enumerate() {
                q |= (view.output(&dev, p) & 1) << i;
            }
            assert_eq!(q, expect, "step {step}");
            view.clock(&mut dev);
            expect = (expect + 1) & 0xF;
        }
    }

    #[test]
    fn relocation_preserves_function() {
        let net = netlist::library::codes::gray_encode("g4", 4);
        let placed = compile(&net, 7);
        let pins = PinAssignment::contiguous(4, 4);

        for origin in [(0u32, 0u32), (5, 3), (10, 10)] {
            let bs = emit_bitstream(&placed, origin, &pins, false);
            let mut dev = Device::new(fpga::device::part("VF400"), ConfigPort::SerialFast);
            dev.apply(&bs).unwrap();
            let mut view = FabricView::resolve(&dev, dev.spec().full_rect()).unwrap();
            for v in 0..16u64 {
                let pinvals: HashMap<u32, u64> =
                    (0..4).map(|i| (pins.inputs[i], (v >> i) & 1)).collect();
                view.eval(&dev, &pinvals);
                let mut g = 0u64;
                for (i, &p) in pins.outputs.iter().enumerate() {
                    g |= (view.output(&dev, p) & 1) << i;
                }
                assert_eq!(
                    g,
                    netlist::library::codes::golden_gray_encode(v),
                    "origin {origin:?} v={v}"
                );
            }
        }
    }

    #[test]
    fn two_circuits_coexist_in_different_regions() {
        // The partitioning primitive: two independent circuits loaded in
        // disjoint regions of one device, both functional.
        let n1 = netlist::library::logic::parity("p4", 4);
        let n2 = netlist::library::codes::gray_encode("g3", 3);
        let p1 = compile(&n1, 1);
        let p2 = compile(&n2, 2);
        let pins1 = PinAssignment {
            inputs: vec![0, 1, 2, 3],
            outputs: vec![4],
        };
        let pins2 = PinAssignment {
            inputs: vec![10, 11, 12],
            outputs: vec![13, 14, 15],
        };

        let mut dev = Device::new(fpga::device::part("VF400"), ConfigPort::SerialFast);
        dev.apply(&emit_bitstream(&p1, (0, 0), &pins1, false))
            .unwrap();
        dev.apply(&emit_bitstream(&p2, (10, 0), &pins2, false))
            .unwrap();

        let r1 = Rect::new(0, 0, p1.width, p1.height);
        let r2 = Rect::new(10, 0, p2.width, p2.height);
        let mut v1 = FabricView::resolve(&dev, r1).unwrap();
        let mut v2 = FabricView::resolve(&dev, r2).unwrap();

        let pv1: HashMap<u32, u64> = (0..4).map(|i| (i as u32, ((0b1011u64) >> i) & 1)).collect();
        v1.eval(&dev, &pv1);
        assert_eq!(v1.output(&dev, 4) & 1, 1, "parity of 0b1011");

        let pv2: HashMap<u32, u64> = (0..3)
            .map(|i| (10 + i as u32, ((0b101u64) >> i) & 1))
            .collect();
        v2.eval(&dev, &pv2);
        let mut g = 0u64;
        for (i, p) in [13u32, 14, 15].iter().enumerate() {
            g |= (v2.output(&dev, *p) & 1) << i;
        }
        assert_eq!(g, netlist::library::codes::golden_gray_encode(0b101));
    }

    #[test]
    fn partial_stream_touches_only_circuit_frames() {
        let net = netlist::library::logic::parity("p4", 4);
        let placed = compile(&net, 9);
        let pins = PinAssignment::contiguous(4, 1);
        let bs = emit_bitstream(&placed, (3, 3), &pins, false);
        assert!(!bs.full);
        assert!(bs.frame_count() <= placed.width as usize);
        let br = bs.bounding_rect().unwrap();
        assert!(br.col >= 3 && br.row >= 3);
    }
}
