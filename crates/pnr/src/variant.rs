//! Seeded circuit variants for delta-reconfiguration experiments.
//!
//! Delta downloads only pay off when successive occupants of a column
//! range share most of their frames. Real tenants get that for free
//! (bug-fix respins, parameter tweaks of one design); the benchmarks
//! need a knob. [`mutate_tables`] derives a *variant* of a compiled
//! circuit by rewriting the LUT truth tables of the blocks in a seeded
//! fraction of the placement's columns — same shape, same placement,
//! same I/O, different configuration bits.
//!
//! The mutation is **column-clustered** on purpose: configuration frames
//! are per-column, so changing a fraction `f` of columns changes ≈ `f`
//! of the circuit's frames — the bench similarity axis maps directly to
//! the frame-delta the device will see. Timing fields are copied
//! unchanged (a table rewrite does not move the critical path in this
//! delay model: path length depends on placement, not table contents).

use crate::flow::CompiledCircuit;
use fsim::SimRng;

/// Derive a variant of `base` whose configuration differs in a seeded
/// `fraction` of the placement's columns (clamped to `[0, 1]`, rounded
/// up to whole columns when nonzero). Every block in a chosen column has
/// its LUT table XORed with a nonzero seeded mask, so each chosen column
/// is guaranteed to differ; `fraction = 0.0` returns a byte-identical
/// configuration under a variant name.
pub fn mutate_tables(base: &CompiledCircuit, fraction: f64, seed: u64) -> CompiledCircuit {
    let mut out = base.clone();
    out.placed.circuit.name = format!("{}~v{seed:x}", base.placed.circuit.name);
    let width = base.placed.width as usize;
    let fraction = fraction.clamp(0.0, 1.0);
    let n_cols = ((fraction * width as f64).ceil() as usize).min(width);
    if n_cols == 0 || width == 0 {
        return out;
    }
    let mut rng = SimRng::new(seed ^ 0xDE17A);
    // Partial Fisher–Yates: the first `n_cols` entries are a uniform
    // sample of the columns, order irrelevant.
    let mut cols: Vec<u32> = (0..width as u32).collect();
    for i in 0..n_cols {
        let j = i + rng.below((width - i) as u64) as usize;
        cols.swap(i, j);
    }
    let chosen = &cols[..n_cols];
    let masks: Vec<u16> = chosen
        .iter()
        .map(|_| (rng.below(u16::MAX as u64) as u16) | 1)
        .collect();
    for (b, &(col, _row)) in out.placed.circuit.blocks.iter_mut().zip(&out.placed.coords) {
        if let Some(i) = chosen.iter().position(|&c| c == col) {
            b.lut_table ^= masks[i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{emit_bitstream, PinAssignment};
    use crate::flow::{compile, CompileOptions};
    use std::collections::BTreeSet;

    fn compiled() -> CompiledCircuit {
        let net = netlist::library::alu::alu("var-alu4", 4);
        compile(
            &net,
            CompileOptions {
                max_height: 10,
                full_height: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn changed_cols(a: &CompiledCircuit, b: &CompiledCircuit) -> BTreeSet<u32> {
        a.placed
            .circuit
            .blocks
            .iter()
            .zip(&b.placed.circuit.blocks)
            .zip(&a.placed.coords)
            .filter(|((x, y), _)| x.lut_table != y.lut_table)
            .map(|(_, &(col, _))| col)
            .collect()
    }

    #[test]
    fn zero_fraction_changes_nothing_but_the_name() {
        let base = compiled();
        let v = mutate_tables(&base, 0.0, 7);
        assert_ne!(v.placed.circuit.name, base.placed.circuit.name);
        assert_eq!(v.placed.circuit.blocks, base.placed.circuit.blocks);
        assert_eq!(v.placed.coords, base.placed.coords);
    }

    #[test]
    fn fraction_bounds_the_set_of_touched_columns() {
        let base = compiled();
        let width = base.placed.width;
        for &(f, seed) in &[(0.25, 1u64), (0.5, 2), (1.0, 3)] {
            let v = mutate_tables(&base, f, seed);
            let touched = changed_cols(&base, &v);
            let budget = ((f * width as f64).ceil() as usize).min(width as usize);
            assert!(
                touched.len() <= budget,
                "f={f}: {} cols touched, budget {budget}",
                touched.len()
            );
            assert!(!touched.is_empty(), "f={f}: nonzero fraction must mutate");
            // Untouched columns stay bit-identical block by block.
            for ((a, b), &(col, _)) in base
                .placed
                .circuit
                .blocks
                .iter()
                .zip(&v.placed.circuit.blocks)
                .zip(&base.placed.coords)
            {
                if !touched.contains(&col) {
                    assert_eq!(a, b, "column {col} leaked a mutation");
                }
            }
        }
    }

    #[test]
    fn variants_are_deterministic_and_seed_sensitive() {
        let base = compiled();
        let a = mutate_tables(&base, 0.5, 42);
        let b = mutate_tables(&base, 0.5, 42);
        let c = mutate_tables(&base, 0.5, 43);
        assert_eq!(a.placed.circuit.blocks, b.placed.circuit.blocks);
        assert_ne!(a.placed.circuit.blocks, c.placed.circuit.blocks);
    }

    #[test]
    fn variant_emits_a_valid_stream_sharing_untouched_frames() {
        let base = compiled();
        let v = mutate_tables(&base, 0.3, 9);
        let pins = PinAssignment::contiguous(
            base.placed.circuit.num_inputs,
            base.placed.circuit.outputs.len(),
        );
        let old = emit_bitstream(&base.placed, (0, 0), &pins, false);
        let new = emit_bitstream(&v.placed, (0, 0), &pins, false);
        let delta = fpga::Bitstream::diff(&old, &new);
        let touched = changed_cols(&base, &v).len();
        assert_eq!(
            delta.changed_frames, touched,
            "delta frame count must equal the mutated column count"
        );
        assert!(delta.changed_frames < delta.total_frames || touched == base.placed.width as usize);
    }
}
