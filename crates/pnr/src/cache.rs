//! Process-wide compile cache.
//!
//! The experiment harness sweeps many `(seed, policy, device, …)` points,
//! and almost every point re-compiles the same workload suites through
//! the full map/pack/place/timing flow. [`compile_shared`] memoizes
//! [`compile`] results behind a global table keyed by the netlist's
//! content hash plus every compile option, handing out
//! `Arc<CompiledCircuit>` so a circuit is placed and routed once per
//! process and shared by reference everywhere else.
//!
//! Correctness rests on two facts:
//! * [`compile`] is deterministic: the same netlist and options always
//!   produce the same placement, timing, and (later) bitstreams — so a
//!   cache hit is observationally identical to a fresh compile. (Host
//!   wall-clock flow timings live in the ambient [`fsim::span`] profiler,
//!   not in [`CompiledCircuit`], so caching does not skew any stored
//!   artifact — a hit simply records no `pnr;*` spans.)
//! * The key covers everything [`compile`] reads: the netlist content
//!   hash (name, gates, inputs, outputs) and all [`CompileOptions`]
//!   fields (`fill` via its bit pattern, since `f64` is not `Eq`).
//!
//! Hit/miss counters are monotone but *thread-racy* (two threads may both
//! miss on the same key and compile twice; the second insert wins and
//! both results are identical) — they belong in the volatile `host`
//! section of an export, never in deterministic output.

use crate::flow::{compile, CompileOptions, CompiledCircuit};
use crate::place::PlaceError;
use netlist::Netlist;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: netlist content hash + every compile option. Shared with
/// the on-disk layer ([`crate::disk`]), which stores and verifies every
/// field inside each entry file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Key {
    pub(crate) net_hash: u64,
    pub(crate) map_k: usize,
    pub(crate) map_max_cuts: usize,
    pub(crate) fill_bits: u64,
    pub(crate) max_height: u32,
    pub(crate) seed: u64,
    pub(crate) shape: Option<(u32, u32)>,
    pub(crate) full_height: bool,
}

impl Key {
    pub(crate) fn new(net: &Netlist, opts: CompileOptions) -> Self {
        Key {
            net_hash: net.content_hash(),
            map_k: opts.map.k,
            map_max_cuts: opts.map.max_cuts,
            fill_bits: opts.fill.to_bits(),
            max_height: opts.max_height,
            seed: opts.seed,
            shape: opts.shape,
            full_height: opts.full_height,
        }
    }
}

/// Hit/miss counters for the process-wide cache (host diagnostics only:
/// under threads two workers can race to compile the same key, so the
/// split between hits and misses is not deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the table.
    pub hits: u64,
    /// Lookups that ran the full flow.
    pub misses: u64,
    /// Process-cache misses served from the on-disk cache.
    pub disk_hits: u64,
    /// On-disk lookups that found no usable entry (missing, corrupt, or
    /// stale — all read as a plain miss).
    pub disk_misses: u64,
    /// Entries written (or rewritten over a corrupt file) on disk.
    pub disk_writes: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_MISSES: AtomicU64 = AtomicU64::new(0);
static DISK_WRITES: AtomicU64 = AtomicU64::new(0);

pub(crate) fn note_disk_hit() {
    DISK_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_disk_miss() {
    DISK_MISSES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_disk_write() {
    DISK_WRITES.fetch_add(1, Ordering::Relaxed);
}

fn table() -> &'static Mutex<HashMap<Key, Arc<CompiledCircuit>>> {
    static TABLE: OnceLock<Mutex<HashMap<Key, Arc<CompiledCircuit>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Compile `net` with `opts`, memoized process-wide. A hit returns the
/// shared artifact without re-running the flow; a miss compiles outside
/// the table lock (so concurrent misses on *different* circuits overlap)
/// and publishes the result.
///
/// When `VFPGA_CACHE_DIR` is set, the persistent [`crate::disk`] layer
/// sits behind the process table: a process miss first tries the disk
/// entry (publishing a valid one to the table), and a genuine compile
/// writes its entry back — so the *next* process starts warm.
pub fn compile_shared(
    net: &Netlist,
    opts: CompileOptions,
) -> Result<Arc<CompiledCircuit>, PlaceError> {
    let key = Key::new(net, opts);
    if let Some(hit) = table().lock().unwrap().get(&key).cloned() {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(hit);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let disk_dir = crate::disk::configured_dir();
    if let Some(dir) = &disk_dir {
        if let Some(loaded) = crate::disk::load(dir, &key) {
            DISK_HITS.fetch_add(1, Ordering::Relaxed);
            let loaded = Arc::new(loaded);
            return Ok(table().lock().unwrap().entry(key).or_insert(loaded).clone());
        }
        DISK_MISSES.fetch_add(1, Ordering::Relaxed);
    }
    let compiled = Arc::new(compile(net, opts)?);
    if let Some(dir) = &disk_dir {
        if crate::disk::store(dir, &key, &compiled) {
            DISK_WRITES.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Two threads may race here; compile is deterministic, so whichever
    // insert wins, every caller observes the same artifact content.
    Ok(table()
        .lock()
        .unwrap()
        .entry(key)
        .or_insert(compiled)
        .clone())
}

/// Snapshot the process-wide hit/miss counters.
pub fn cache_stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        disk_misses: DISK_MISSES.load(Ordering::Relaxed),
        disk_writes: DISK_WRITES.load(Ordering::Relaxed),
    }
}

/// Number of distinct compiled circuits the cache currently holds.
pub fn cache_len() -> usize {
    table().lock().unwrap().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{emit_bitstream, PinAssignment};

    #[test]
    fn hit_returns_the_same_arc() {
        let net = netlist::library::arith::ripple_adder("cache-a8", 8);
        let opts = CompileOptions::default();
        let a = compile_shared(&net, opts).unwrap();
        let b = compile_shared(&net, opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit");
    }

    #[test]
    fn different_options_are_different_entries() {
        let net = netlist::library::arith::ripple_adder("cache-opt", 8);
        let a = compile_shared(&net, CompileOptions::default()).unwrap();
        let b = compile_shared(
            &net,
            CompileOptions {
                seed: 0xD1FF,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "seed is part of the key");
    }

    #[test]
    fn infeasible_compiles_propagate_errors() {
        let net = netlist::library::arith::array_multiplier("cache-m8", 8);
        let r = compile_shared(
            &net,
            CompileOptions {
                shape: Some((2, 2)),
                ..Default::default()
            },
        );
        assert!(r.is_err());
    }

    /// The property the whole design rests on: a cached artifact is
    /// indistinguishable from a fresh compile — same placement, same
    /// timing, and identical emitted bitstreams at several origins.
    #[test]
    fn property_cached_equals_fresh_compile() {
        let circuits: Vec<netlist::Netlist> = vec![
            netlist::library::arith::ripple_adder("cp-add8", 8),
            netlist::library::seq::lfsr("cp-lfsr", 16, 0b1101_0000_0000_1000),
            netlist::library::codes::crc_comb("cp-crc8", netlist::library::codes::CRC8, 8, 8),
            netlist::library::alu::alu("cp-alu4", 4),
        ];
        let opts = CompileOptions {
            max_height: 10,
            full_height: true,
            ..Default::default()
        };
        for net in &circuits {
            let cached = compile_shared(&net.clone(), opts).unwrap();
            let cached_again = compile_shared(net, opts).unwrap();
            let fresh = compile(net, opts).unwrap();
            assert!(Arc::ptr_eq(&cached, &cached_again));
            assert_eq!(cached.placed.coords, fresh.placed.coords, "{}", net.name());
            assert_eq!(cached.crit_path_ns, fresh.crit_path_ns);
            assert_eq!(cached.clock_ns, fresh.clock_ns);
            let ins = cached.placed.circuit.num_inputs;
            let outs = cached.placed.circuit.outputs.len();
            for origin in [(0u32, 0u32), (3, 0)] {
                let pins = PinAssignment::contiguous(ins, outs);
                let a = emit_bitstream(&cached.placed, origin, &pins, false);
                let b = emit_bitstream(&fresh.placed, origin, &pins, false);
                assert_eq!(a, b, "{} bitstreams diverge at {origin:?}", net.name());
            }
        }
        let s = cache_stats();
        assert!(s.hits >= circuits.len() as u64, "stats move: {s:?}");
        assert!(cache_len() >= circuits.len());
    }
}
