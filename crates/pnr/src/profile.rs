//! Span-style phase timing for the compilation flow.
//!
//! [`FlowProfile`] records how much *host* wall-clock time each phase of
//! the flow (map, pack, place, route, emit, …) consumed. It answers the
//! question "where does compile time go?" for the bench harness; it has
//! nothing to do with simulated time, and the simulated results never
//! depend on it.

use std::time::{Duration, Instant};

/// Accumulated wall-clock time per named flow phase, in execution order.
///
/// Phase names are `&'static str` so recording is allocation-free; timing
/// the same phase twice accumulates into one span.
#[derive(Debug, Clone, Default)]
pub struct FlowProfile {
    spans: Vec<(&'static str, Duration)>,
}

impl FlowProfile {
    /// An empty profile.
    pub fn new() -> Self {
        FlowProfile::default()
    }

    /// Run `f`, attributing its wall-clock time to `phase`.
    pub fn time<R>(&mut self, phase: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.record(phase, start.elapsed());
        result
    }

    /// Add `dur` to the named span (created at the end on first use).
    pub fn record(&mut self, phase: &'static str, dur: Duration) {
        match self.spans.iter_mut().find(|(p, _)| *p == phase) {
            Some((_, d)) => *d += dur,
            None => self.spans.push((phase, dur)),
        }
    }

    /// Time of the named span, if recorded.
    pub fn get(&self, phase: &str) -> Option<Duration> {
        self.spans
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|&(_, d)| d)
    }

    /// All spans in first-recorded order.
    pub fn spans(&self) -> &[(&'static str, Duration)] {
        &self.spans
    }

    /// Sum of all spans.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|&(_, d)| d).sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_and_returns() {
        let mut p = FlowProfile::new();
        let v = p.time("map", || 41 + 1);
        assert_eq!(v, 42);
        assert!(p.get("map").is_some());
        assert_eq!(p.get("route"), None);
        assert_eq!(p.spans().len(), 1);
    }

    #[test]
    fn repeat_phases_accumulate_in_place() {
        let mut p = FlowProfile::new();
        p.record("place", Duration::from_micros(5));
        p.record("route", Duration::from_micros(1));
        p.record("place", Duration::from_micros(7));
        assert_eq!(p.get("place"), Some(Duration::from_micros(12)));
        assert_eq!(p.spans().len(), 2, "no duplicate span rows");
        assert_eq!(p.spans()[0].0, "place", "order is first-recorded");
        assert_eq!(p.total(), Duration::from_micros(13));
    }
}
