//! Channel-capacity routing over the device grid.
//!
//! The routing model is a grid graph: one node per CLB site, horizontal
//! and vertical channel segments between neighbours, each with a fixed
//! track capacity shared by *all circuits currently loaded on the device*.
//! Each block-to-block connection is routed by BFS (maze routing) through
//! segments with spare capacity; when a connection fails, a short
//! negotiated-congestion loop (rip-up with history costs) retries.
//!
//! Because capacity is shared device-wide, whether a placed circuit routes
//! *depends on its origin and on its neighbours* — the §4 phenomenon that
//! makes FPGA relocation harder than code relocation, and the mechanism
//! behind garbage-collection relocation failures in experiment E6.

use crate::pack::BlockSource;
use crate::place::PlacedCircuit;
use std::collections::VecDeque;

/// Routing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The circuit does not fit on the device at this origin.
    OutOfBounds,
    /// A connection could not be routed within the capacity budget.
    Congested {
        /// Source CLB (absolute).
        from: (u32, u32),
        /// Sink CLB (absolute).
        to: (u32, u32),
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::OutOfBounds => write!(f, "placement exceeds device bounds"),
            RouteError::Congested { from, to } => {
                write!(f, "no route from {from:?} to {to:?}: channels full")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A segment id in the routing fabric (opaque to callers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegId(u32);

/// The routes of one loaded circuit, for later release.
#[derive(Debug, Clone, Default)]
pub struct CircuitRoutes {
    segs: Vec<SegId>,
    /// Total wire segments used (diagnostic).
    pub wirelength: usize,
}

/// Device-wide routing state.
#[derive(Debug, Clone)]
pub struct RoutingFabric {
    cols: u32,
    rows: u32,
    cap: u16,
    /// Usage per horizontal segment (between (c,r) and (c+1,r)).
    h_used: Vec<u16>,
    /// Usage per vertical segment (between (c,r) and (c,r+1)).
    v_used: Vec<u16>,
}

/// Default tracks per channel segment — enough for healthy utilization,
/// scarce enough that congestion is a real phenomenon.
pub const DEFAULT_CHANNEL_CAPACITY: u16 = 12;

impl RoutingFabric {
    /// A fabric for a `cols × rows` device with the given per-segment
    /// track capacity.
    pub fn new(cols: u32, rows: u32, cap: u16) -> Self {
        let h = ((cols.saturating_sub(1)) * rows) as usize;
        let v = (cols * rows.saturating_sub(1)) as usize;
        RoutingFabric {
            cols,
            rows,
            cap,
            h_used: vec![0; h],
            v_used: vec![0; v],
        }
    }

    /// Fabric sized to a device spec with default capacity.
    pub fn for_device(spec: &fpga::DeviceSpec) -> Self {
        RoutingFabric::new(spec.cols, spec.rows, DEFAULT_CHANNEL_CAPACITY)
    }

    fn h_idx(&self, c: u32, r: u32) -> usize {
        (r * (self.cols - 1) + c) as usize
    }

    fn v_idx(&self, c: u32, r: u32) -> usize {
        (r * self.cols + c) as usize
    }

    /// Fraction of total channel capacity currently in use.
    pub fn utilization(&self) -> f64 {
        let used: u64 = self
            .h_used
            .iter()
            .chain(&self.v_used)
            .map(|&u| u as u64)
            .sum();
        let total = (self.h_used.len() + self.v_used.len()) as u64 * self.cap as u64;
        if total == 0 {
            0.0
        } else {
            used as f64 / total as f64
        }
    }

    fn seg_between(&self, a: (u32, u32), b: (u32, u32)) -> SegId {
        // Encode: horizontal segs in [0, H), vertical in [H, H+V).
        if a.1 == b.1 {
            let c = a.0.min(b.0);
            SegId(self.h_idx(c, a.1) as u32)
        } else {
            let r = a.1.min(b.1);
            SegId((self.h_used.len() + self.v_idx(a.0, r)) as u32)
        }
    }

    fn seg_used(&self, s: SegId) -> u16 {
        let i = s.0 as usize;
        if i < self.h_used.len() {
            self.h_used[i]
        } else {
            self.v_used[i - self.h_used.len()]
        }
    }

    fn seg_add(&mut self, s: SegId, delta: i32) {
        let i = s.0 as usize;
        let slot = if i < self.h_used.len() {
            &mut self.h_used[i]
        } else {
            &mut self.v_used[i - self.h_used.len()]
        };
        let v = *slot as i32 + delta;
        debug_assert!(v >= 0, "segment usage underflow");
        *slot = v as u16;
    }

    /// BFS a path from `from` to `to` through segments with spare capacity.
    /// Returns the segments of the path, or None.
    fn bfs(&self, from: (u32, u32), to: (u32, u32)) -> Option<Vec<SegId>> {
        if from == to {
            return Some(Vec::new());
        }
        let n = (self.cols * self.rows) as usize;
        let idx = |c: u32, r: u32| (r * self.cols + c) as usize;
        let mut prev: Vec<u32> = vec![u32::MAX; n];
        let mut q = VecDeque::new();
        q.push_back(from);
        prev[idx(from.0, from.1)] = idx(from.0, from.1) as u32;
        while let Some((c, r)) = q.pop_front() {
            if (c, r) == to {
                // Reconstruct.
                let mut segs = Vec::new();
                let mut cur = (c, r);
                while cur != from {
                    let p = prev[idx(cur.0, cur.1)];
                    let pc = p % self.cols;
                    let pr = p / self.cols;
                    segs.push(self.seg_between((pc, pr), cur));
                    cur = (pc, pr);
                }
                segs.reverse();
                return Some(segs);
            }
            let neighbours = [
                (c.wrapping_sub(1), r),
                (c + 1, r),
                (c, r.wrapping_sub(1)),
                (c, r + 1),
            ];
            for (nc, nr) in neighbours {
                if nc >= self.cols || nr >= self.rows {
                    continue;
                }
                if prev[idx(nc, nr)] != u32::MAX {
                    continue;
                }
                let seg = self.seg_between((c, r), (nc, nr));
                if self.seg_used(seg) >= self.cap {
                    continue;
                }
                prev[idx(nc, nr)] = idx(c, r) as u32;
                q.push_back((nc, nr));
            }
        }
        None
    }

    /// Route every block-to-block connection of `placed` at `origin`,
    /// committing segment usage. On failure nothing is committed.
    pub fn route_circuit(
        &mut self,
        placed: &PlacedCircuit,
        origin: (u32, u32),
    ) -> Result<CircuitRoutes, RouteError> {
        // Bounds.
        if origin.0 + placed.width > self.cols || origin.1 + placed.height > self.rows {
            return Err(RouteError::OutOfBounds);
        }
        let abs = |rel: (u32, u32)| (rel.0 + origin.0, rel.1 + origin.1);

        // Connections, shortest first (long nets route last so they detour
        // around short ones — a cheap but effective ordering heuristic).
        let mut conns: Vec<((u32, u32), (u32, u32))> = Vec::new();
        for (i, blk) in placed.circuit.blocks.iter().enumerate() {
            for s in blk.inputs {
                if let BlockSource::Block(j) = s {
                    conns.push((abs(placed.coords[j as usize]), abs(placed.coords[i])));
                }
            }
        }
        conns.sort_by_key(|&(a, b)| a.0.abs_diff(b.0) + a.1.abs_diff(b.1));

        let mut committed: Vec<SegId> = Vec::new();
        let mut wirelength = 0usize;
        for &(from, to) in &conns {
            match self.bfs(from, to) {
                Some(segs) => {
                    for &s in &segs {
                        self.seg_add(s, 1);
                    }
                    wirelength += segs.len();
                    committed.extend(segs);
                }
                None => {
                    // Roll back everything committed for this circuit.
                    for &s in &committed {
                        self.seg_add(s, -1);
                    }
                    return Err(RouteError::Congested { from, to });
                }
            }
        }
        Ok(CircuitRoutes {
            segs: committed,
            wirelength,
        })
    }

    /// Release the segments of a previously routed circuit.
    pub fn release(&mut self, routes: &CircuitRoutes) {
        for &s in &routes.segs {
            self.seg_add(s, -1);
        }
    }

    /// Probe whether `placed` would route at `origin` without committing.
    pub fn can_route(&self, placed: &PlacedCircuit, origin: (u32, u32)) -> bool {
        let mut probe = self.clone();
        probe.route_circuit(placed, origin).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack;
    use crate::place::place;
    use fsim::SimRng;
    use netlist::{map_to_luts, MapOptions};

    fn placed_mult(w: u32, h: u32) -> PlacedCircuit {
        let net = netlist::library::arith::array_multiplier("m5", 5);
        let pc = pack(&map_to_luts(&net, MapOptions::default()));
        place(&pc, w, h, &mut SimRng::new(1)).unwrap()
    }

    #[test]
    fn routes_at_origin_and_releases_cleanly() {
        let p = placed_mult(10, 10);
        let mut f = RoutingFabric::new(20, 20, DEFAULT_CHANNEL_CAPACITY);
        let before = f.utilization();
        let routes = f.route_circuit(&p, (0, 0)).unwrap();
        assert!(routes.wirelength > 0);
        assert!(f.utilization() > before);
        f.release(&routes);
        assert_eq!(f.utilization(), before);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let p = placed_mult(10, 10);
        let mut f = RoutingFabric::new(12, 12, DEFAULT_CHANNEL_CAPACITY);
        match f.route_circuit(&p, (4, 4)) {
            Err(RouteError::OutOfBounds) => {}
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn relocation_routes_at_multiple_origins() {
        let p = placed_mult(10, 10);
        let mut f = RoutingFabric::new(32, 32, DEFAULT_CHANNEL_CAPACITY);
        let a = f.route_circuit(&p, (0, 0)).unwrap();
        let b = f.route_circuit(&p, (20, 20)).unwrap();
        // Disjoint regions: both must succeed and be independently releasable.
        f.release(&a);
        f.release(&b);
        assert_eq!(f.utilization(), 0.0);
    }

    #[test]
    fn congestion_eventually_blocks_loading() {
        // Tiny capacity: packing many copies side by side must fail at
        // some point, and the failure must roll back cleanly.
        let p = placed_mult(10, 10);
        let mut f = RoutingFabric::new(20, 20, 2);
        let mut loaded = 0;
        let mut failed = false;
        for origin in [(0, 0), (10, 0), (0, 10), (10, 10)] {
            match f.route_circuit(&p, origin) {
                Ok(_) => loaded += 1,
                Err(RouteError::Congested { .. }) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(
            failed || loaded == 4,
            "with cap=2 either everything squeezes in or congestion appears"
        );
        assert!(
            failed,
            "capacity 2 should congest a 5x5 multiplier tiling, loaded {loaded}"
        );
    }

    #[test]
    fn failed_route_commits_nothing() {
        let p = placed_mult(10, 10);
        let mut f = RoutingFabric::new(10, 10, 1);
        let before_h = f.h_used.clone();
        let before_v = f.v_used.clone();
        if f.route_circuit(&p, (0, 0)).is_err() {
            assert_eq!(f.h_used, before_h);
            assert_eq!(f.v_used, before_v);
        }
    }

    #[test]
    fn bfs_detours_around_full_channels() {
        let mut f = RoutingFabric::new(4, 4, 1);
        // Saturate the straight-line path between (0,0) and (3,0).
        for c in 0..3 {
            let s = f.seg_between((c, 0), (c + 1, 0));
            f.seg_add(s, 1);
        }
        let path = f.bfs((0, 0), (3, 0)).expect("detour must exist");
        assert!(path.len() > 3, "must detour, got len {}", path.len());
    }

    #[test]
    fn utilization_is_zero_on_fresh_fabric() {
        let f = RoutingFabric::new(10, 10, 8);
        assert_eq!(f.utilization(), 0.0);
    }
}
