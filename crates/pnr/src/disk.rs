//! Persistent on-disk compile cache.
//!
//! The process cache in [`crate::cache`] amortizes place-and-route within
//! one process; sweeps and `bench_perf` runs pay the full flow again every
//! time the harness restarts. This module persists [`CompiledCircuit`]
//! artifacts to disk in a versioned JSON format so a *warm* process can
//! skip the flow entirely.
//!
//! Layering and trust model:
//!
//! * The process cache always sits in front. [`crate::compile_shared`]
//!   consults it first, then (when a cache directory is configured via the
//!   `VFPGA_CACHE_DIR` environment variable) tries the disk, and only then
//!   runs the flow — publishing the result to both layers.
//! * Entries are *advisory*: a missing, corrupt, truncated, or
//!   version-mismatched file is treated exactly like a miss — the circuit
//!   is recompiled and the entry rewritten. The cache can be deleted at
//!   any time without affecting correctness, because [`crate::compile`] is
//!   deterministic and the stored artifact is observationally identical to
//!   a fresh compile.
//! * The full cache key (netlist content hash + every [`CompileOptions`]
//!   field, `f64`s by bit pattern) is stored *inside* the file and
//!   verified on load, so a filename hash collision or a stale file from
//!   an older workload can never hand back the wrong circuit.
//! * Writes go to a process-unique temp file in the same directory,
//!   then `rename` into place — concurrent processes race benignly
//!   (last rename wins; both wrote identical bytes).
//!
//! Schema versioning: [`DISK_SCHEMA`] names the format. Any change to the
//! serialized shape must bump the version; old entries then read as stale
//! and are rewritten on the next compile.

use crate::cache::Key;
use crate::flow::{compile, CompileOptions, CompiledCircuit};
use crate::pack::{BlockSource, PackedBlock, PackedCircuit};
use crate::place::{PlaceError, PlacedCircuit};
use fsim::json::{Json, Obj};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Version tag of the on-disk entry format.
pub const DISK_SCHEMA: &str = "vfpga-pnr-cache/1";

/// The cache directory configured for this process: the value of the
/// `VFPGA_CACHE_DIR` environment variable, or `None` (disk layer off).
/// Read on every call — cheap next to a compile, and keeps tests that
/// use explicit directories independent of process-global state.
pub fn configured_dir() -> Option<PathBuf> {
    std::env::var_os("VFPGA_CACHE_DIR").map(PathBuf::from)
}

/// FNV-1a over the key fields; names the entry file. Collisions are
/// harmless (the stored key is verified on load), this only needs to
/// spread entries across filenames.
fn key_fnv(key: &Key) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    mix(key.net_hash);
    mix(key.map_k as u64);
    mix(key.map_max_cuts as u64);
    mix(key.fill_bits);
    mix(key.max_height as u64);
    mix(key.seed);
    match key.shape {
        None => mix(u64::MAX),
        Some((w, h2)) => {
            mix(w as u64);
            mix(h2 as u64);
        }
    }
    mix(key.full_height as u64);
    h
}

/// Path of the entry file for `key` under `dir`.
pub(crate) fn entry_path(dir: &Path, key: &Key) -> PathBuf {
    dir.join(format!("{:016x}.json", key_fnv(key)))
}

fn key_json(key: &Key) -> Json {
    Obj::new()
        .set("net_hash", key.net_hash)
        .set("map_k", key.map_k)
        .set("map_max_cuts", key.map_max_cuts)
        .set("fill_bits", key.fill_bits)
        .set("max_height", key.max_height)
        .set("seed", key.seed)
        .set(
            "shape",
            match key.shape {
                None => Json::Null,
                Some((w, h)) => Json::Arr(vec![w.into(), h.into()]),
            },
        )
        .set("full_height", key.full_height)
        .build()
}

/// `BlockSource` → compact tagged integer (`tag * 2^32 + value`).
fn source_code(s: BlockSource) -> u64 {
    match s {
        BlockSource::None => 0,
        BlockSource::Block(i) => (1u64 << 32) | i as u64,
        BlockSource::Input(i) => (2u64 << 32) | i as u64,
        BlockSource::Const(b) => (3u64 << 32) | b as u64,
    }
}

fn source_decode(v: u64) -> Option<BlockSource> {
    let val = (v & 0xffff_ffff) as u32;
    match v >> 32 {
        0 if val == 0 => Some(BlockSource::None),
        1 => Some(BlockSource::Block(val)),
        2 => Some(BlockSource::Input(val)),
        3 if val <= 1 => Some(BlockSource::Const(val == 1)),
        _ => None,
    }
}

/// One block as a flat scalar row:
/// `[lut_table, in0, in1, in2, in3, ff_code, out_from_ff]`
/// with `ff_code` 0 = no FF, 1 = `Some(false)`, 2 = `Some(true)`.
fn block_json(b: &PackedBlock) -> Json {
    let ff_code: u64 = match b.ff {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    Json::Arr(vec![
        Json::UInt(b.lut_table as u64),
        Json::UInt(source_code(b.inputs[0])),
        Json::UInt(source_code(b.inputs[1])),
        Json::UInt(source_code(b.inputs[2])),
        Json::UInt(source_code(b.inputs[3])),
        Json::UInt(ff_code),
        Json::Bool(b.out_from_ff),
    ])
}

fn circuit_json(c: &CompiledCircuit) -> Json {
    let p = &c.placed;
    let pc = &p.circuit;
    let mut coords = Vec::with_capacity(p.coords.len() * 2);
    for &(col, row) in &p.coords {
        coords.push(Json::UInt(col as u64));
        coords.push(Json::UInt(row as u64));
    }
    Obj::new()
        .set("name", pc.name.as_str())
        .set("num_inputs", pc.num_inputs)
        .set(
            "outputs",
            Json::Arr(
                pc.outputs
                    .iter()
                    .map(|(n, i)| Json::Arr(vec![Json::Str(n.clone()), Json::UInt(*i as u64)]))
                    .collect(),
            ),
        )
        .set(
            "ff_block",
            Json::Arr(pc.ff_block.iter().map(|&i| Json::UInt(i as u64)).collect()),
        )
        .set(
            "blocks",
            Json::Arr(pc.blocks.iter().map(block_json).collect()),
        )
        .set("width", p.width)
        .set("height", p.height)
        .set("coords", Json::Arr(coords))
        .set("hpwl", p.hpwl)
        .set("crit_path_ns_bits", c.crit_path_ns.to_bits())
        .set("clock_ns_bits", c.clock_ns.to_bits())
        .build()
}

fn entry_json(key: &Key, c: &CompiledCircuit) -> Json {
    Obj::new()
        .set("schema", DISK_SCHEMA)
        .set("key", key_json(key))
        .set("circuit", circuit_json(c))
        .build()
}

// --- defensive readers: any shape mismatch yields None (treated as a
// --- corrupt/stale entry, i.e. a plain miss).

fn get_u64(j: &Json, key: &str) -> Option<u64> {
    match j.get(key)? {
        Json::UInt(v) => Some(*v),
        _ => None,
    }
}

fn get_u32(j: &Json, key: &str) -> Option<u32> {
    u32::try_from(get_u64(j, key)?).ok()
}

fn get_bool(j: &Json, key: &str) -> Option<bool> {
    match j.get(key)? {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn get_str<'a>(j: &'a Json, key: &str) -> Option<&'a str> {
    match j.get(key)? {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn as_uint(j: &Json) -> Option<u64> {
    match j {
        Json::UInt(v) => Some(*v),
        _ => None,
    }
}

fn key_matches(j: &Json, key: &Key) -> bool {
    let shape_ok = match (j.get("shape"), key.shape) {
        (Some(Json::Null), None) => true,
        (Some(Json::Arr(a)), Some((w, h))) => {
            a.len() == 2 && as_uint(&a[0]) == Some(w as u64) && as_uint(&a[1]) == Some(h as u64)
        }
        _ => false,
    };
    shape_ok
        && get_u64(j, "net_hash") == Some(key.net_hash)
        && get_u64(j, "map_k") == Some(key.map_k as u64)
        && get_u64(j, "map_max_cuts") == Some(key.map_max_cuts as u64)
        && get_u64(j, "fill_bits") == Some(key.fill_bits)
        && get_u64(j, "max_height") == Some(key.max_height as u64)
        && get_u64(j, "seed") == Some(key.seed)
        && get_bool(j, "full_height") == Some(key.full_height)
}

fn block_from_json(j: &Json) -> Option<PackedBlock> {
    let row = j.as_arr()?;
    if row.len() != 7 {
        return None;
    }
    let lut = u16::try_from(as_uint(&row[0])?).ok()?;
    let mut inputs = [BlockSource::None; 4];
    for (slot, item) in inputs.iter_mut().zip(&row[1..5]) {
        *slot = source_decode(as_uint(item)?)?;
    }
    let ff = match as_uint(&row[5])? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        _ => return None,
    };
    let out_from_ff = match &row[6] {
        Json::Bool(b) => *b,
        _ => return None,
    };
    Some(PackedBlock {
        lut_table: lut,
        inputs,
        ff,
        out_from_ff,
    })
}

fn circuit_from_json(j: &Json) -> Option<CompiledCircuit> {
    let name = get_str(j, "name")?.to_string();
    let num_inputs = usize::try_from(get_u64(j, "num_inputs")?).ok()?;
    let outputs = j
        .get("outputs")?
        .as_arr()?
        .iter()
        .map(|o| {
            let pair = o.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let n = match &pair[0] {
                Json::Str(s) => s.clone(),
                _ => return None,
            };
            Some((n, u32::try_from(as_uint(&pair[1])?).ok()?))
        })
        .collect::<Option<Vec<_>>>()?;
    let ff_block = j
        .get("ff_block")?
        .as_arr()?
        .iter()
        .map(|v| u32::try_from(as_uint(v)?).ok())
        .collect::<Option<Vec<_>>>()?;
    let blocks = j
        .get("blocks")?
        .as_arr()?
        .iter()
        .map(block_from_json)
        .collect::<Option<Vec<_>>>()?;
    let raw_coords = j.get("coords")?.as_arr()?;
    if raw_coords.len() != blocks.len() * 2 {
        return None;
    }
    let coords = raw_coords
        .chunks(2)
        .map(|pair| {
            Some((
                u32::try_from(as_uint(&pair[0])?).ok()?,
                u32::try_from(as_uint(&pair[1])?).ok()?,
            ))
        })
        .collect::<Option<Vec<_>>>()?;
    let width = get_u32(j, "width")?;
    let height = get_u32(j, "height")?;
    // A coordinate outside the region would make downstream emission
    // panic; reject the entry instead.
    if coords.iter().any(|&(c, r)| c >= width || r >= height) {
        return None;
    }
    Some(CompiledCircuit {
        placed: PlacedCircuit {
            circuit: PackedCircuit {
                name,
                blocks,
                num_inputs,
                outputs,
                ff_block,
            },
            width,
            height,
            coords,
            hpwl: get_u64(j, "hpwl")?,
        },
        crit_path_ns: f64::from_bits(get_u64(j, "crit_path_ns_bits")?),
        clock_ns: f64::from_bits(get_u64(j, "clock_ns_bits")?),
    })
}

/// Load the entry for `key` from `dir`. `None` on any miss: no file,
/// unreadable, unparsable, wrong schema version, or stored key mismatch
/// (filename collision / stale file).
pub(crate) fn load(dir: &Path, key: &Key) -> Option<CompiledCircuit> {
    let text = std::fs::read_to_string(entry_path(dir, key)).ok()?;
    let doc = Json::parse(&text).ok()?;
    if get_str(&doc, "schema") != Some(DISK_SCHEMA) {
        return None;
    }
    if !key_matches(doc.get("key")?, key) {
        return None;
    }
    circuit_from_json(doc.get("circuit")?)
}

/// Write the entry for `key` to `dir` (creating the directory). Returns
/// whether the write landed; failures are swallowed — a cache that cannot
/// be written is merely cold.
pub(crate) fn store(dir: &Path, key: &Key, c: &CompiledCircuit) -> bool {
    if std::fs::create_dir_all(dir).is_err() {
        return false;
    }
    let path = entry_path(dir, key);
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let text = entry_json(key, c).render();
    if std::fs::write(&tmp, text).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    match std::fs::rename(&tmp, &path) {
        Ok(()) => true,
        Err(_) => {
            let _ = std::fs::remove_file(&tmp);
            false
        }
    }
}

/// Compile `net` against an *explicit* disk cache directory, bypassing
/// the process table: a present valid entry loads from disk, anything
/// else compiles and writes the entry. This is the path `bench_perf`
/// and the CI smoke test time — going around the process cache is what
/// makes the disk layer's cold/warm split observable.
pub fn compile_with_disk(
    net: &netlist::Netlist,
    opts: CompileOptions,
    dir: &Path,
) -> Result<Arc<CompiledCircuit>, PlaceError> {
    let key = Key::new(net, opts);
    if let Some(hit) = load(dir, &key) {
        crate::cache::note_disk_hit();
        return Ok(Arc::new(hit));
    }
    crate::cache::note_disk_miss();
    let compiled = compile(net, opts)?;
    if store(dir, &key, &compiled) {
        crate::cache::note_disk_write();
    }
    Ok(Arc::new(compiled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{emit_bitstream, PinAssignment};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test, without touching any global
    /// cache location.
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "vfpga-pnr-cache-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trip_preserves_the_whole_artifact() {
        let dir = scratch("rt");
        let net = netlist::library::seq::lfsr("disk-lfsr", 16, 0b1101_0000_0000_1000);
        let opts = CompileOptions {
            max_height: 10,
            full_height: true,
            ..Default::default()
        };
        let key = Key::new(&net, opts);
        let fresh = compile(&net, opts).unwrap();
        assert!(store(&dir, &key, &fresh));
        let back = load(&dir, &key).expect("stored entry must load");
        assert_eq!(back.placed.circuit.name, fresh.placed.circuit.name);
        assert_eq!(back.placed.circuit.blocks, fresh.placed.circuit.blocks);
        assert_eq!(back.placed.circuit.outputs, fresh.placed.circuit.outputs);
        assert_eq!(back.placed.circuit.ff_block, fresh.placed.circuit.ff_block);
        assert_eq!(back.placed.coords, fresh.placed.coords);
        assert_eq!(back.placed.hpwl, fresh.placed.hpwl);
        assert_eq!(back.crit_path_ns.to_bits(), fresh.crit_path_ns.to_bits());
        assert_eq!(back.clock_ns.to_bits(), fresh.clock_ns.to_bits());
        // The decisive check: emitted bitstreams are identical, so the
        // loaded artifact is interchangeable everywhere downstream.
        let pins = PinAssignment::contiguous(
            fresh.placed.circuit.num_inputs,
            fresh.placed.circuit.outputs.len(),
        );
        assert_eq!(
            emit_bitstream(&back.placed, (0, 0), &pins, false),
            emit_bitstream(&fresh.placed, (0, 0), &pins, false),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_stale_and_mismatched_entries_read_as_misses() {
        let dir = scratch("bad");
        let net = netlist::library::arith::ripple_adder("disk-bad", 8);
        let opts = CompileOptions::default();
        let key = Key::new(&net, opts);
        let fresh = compile(&net, opts).unwrap();
        assert!(store(&dir, &key, &fresh));
        let path = entry_path(&dir, &key);

        // Truncated file → miss.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(load(&dir, &key).is_none(), "truncated entry must miss");

        // Valid JSON, wrong schema version → miss.
        let stale = full.replacen(DISK_SCHEMA, "vfpga-pnr-cache/0", 1);
        std::fs::write(&path, stale).unwrap();
        assert!(load(&dir, &key).is_none(), "stale schema must miss");

        // Valid JSON, wrong stored key (filename collision) → miss.
        let collided = full.replacen(
            &format!("\"seed\": {}", key.seed),
            &format!("\"seed\": {}", key.seed ^ 1),
            1,
        );
        std::fs::write(&path, collided).unwrap();
        assert!(load(&dir, &key).is_none(), "key mismatch must miss");

        // Garbage → miss; and a rewrite recovers the entry.
        std::fs::write(&path, "not json at all {{{").unwrap();
        assert!(load(&dir, &key).is_none());
        assert!(store(&dir, &key, &fresh));
        assert!(load(&dir, &key).is_some(), "rewrite must recover");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compile_with_disk_is_cold_then_warm_and_equivalent() {
        let dir = scratch("warm");
        let net = netlist::library::alu::alu("disk-alu4", 4);
        let opts = CompileOptions {
            max_height: 12,
            full_height: true,
            ..Default::default()
        };
        let before = crate::cache::cache_stats();
        let cold = compile_with_disk(&net, opts, &dir).unwrap();
        let mid = crate::cache::cache_stats();
        assert_eq!(mid.disk_misses, before.disk_misses + 1);
        assert_eq!(mid.disk_writes, before.disk_writes + 1);
        let warm = compile_with_disk(&net, opts, &dir).unwrap();
        let after = crate::cache::cache_stats();
        assert_eq!(after.disk_hits, mid.disk_hits + 1);
        assert_eq!(cold.placed.coords, warm.placed.coords);
        assert_eq!(cold.crit_path_ns.to_bits(), warm.crit_path_ns.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn source_codes_round_trip() {
        for s in [
            BlockSource::None,
            BlockSource::Block(0),
            BlockSource::Block(4_000_000_000),
            BlockSource::Input(7),
            BlockSource::Const(false),
            BlockSource::Const(true),
        ] {
            assert_eq!(source_decode(source_code(s)), Some(s));
        }
        assert_eq!(source_decode(5u64 << 32), None, "unknown tag rejected");
        assert_eq!(source_decode(3u64 << 32 | 2), None, "bad const rejected");
    }
}
