//! LUT/FF packing into CLB-shaped blocks.
//!
//! The simulated CLB holds one 4-LUT and one flip-flop with a single
//! output (combinational *or* registered). A flip-flop therefore packs
//! with its driving LUT only when that LUT has no other consumers; all
//! other flip-flops become *route-through* blocks (identity LUT feeding
//! the FF). Primary inputs and constants that directly feed outputs also
//! get route-throughs, because an IOB can only be driven by a CLB.

use netlist::{LutIn, LutNetwork};

/// Where a packed block's LUT input comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockSource {
    /// Unused input.
    None,
    /// Output of another block (index into [`PackedCircuit::blocks`]).
    Block(u32),
    /// Primary input bit.
    Input(u32),
    /// Constant.
    Const(bool),
}

/// One CLB-shaped block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedBlock {
    /// LUT truth table (≤ 4 inputs).
    pub lut_table: u16,
    /// LUT input sources.
    pub inputs: [BlockSource; 4],
    /// `Some(init)` when the block's flip-flop is used.
    pub ff: Option<bool>,
    /// Whether the block output is the FF output (else the LUT output).
    pub out_from_ff: bool,
}

/// A packed circuit: blocks plus external bindings.
#[derive(Debug, Clone)]
pub struct PackedCircuit {
    /// Circuit name.
    pub name: String,
    /// Blocks; indices are the [`BlockSource::Block`] namespace.
    pub blocks: Vec<PackedBlock>,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Primary outputs as `(name, block index)`.
    pub outputs: Vec<(String, u32)>,
    /// For each flip-flop of the source LUT network, the block that holds
    /// it — the mapping OS state save/restore uses.
    pub ff_block: Vec<u32>,
}

impl PackedCircuit {
    /// Number of CLBs the circuit occupies.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of flip-flops (sequential state bits).
    pub fn ff_count(&self) -> usize {
        self.ff_block.len()
    }

    /// Whether the circuit holds any state.
    pub fn is_sequential(&self) -> bool {
        !self.ff_block.is_empty()
    }
}

const IDENTITY_LUT: u16 = 0b10; // out = in0

/// Pack a LUT network into CLB blocks.
pub fn pack(net: &LutNetwork) -> PackedCircuit {
    assert_eq!(net.validate(), Ok(()), "pack requires a valid LUT network");
    assert!(net.k <= 4, "fabric CLBs hold 4-LUTs");

    // Count consumers of each LUT output (other LUTs, FF d-inputs, outputs).
    let mut lut_consumers = vec![0u32; net.luts.len()];
    let mut tally = |s: &LutIn| {
        if let LutIn::Lut(j) = s {
            lut_consumers[*j as usize] += 1;
        }
    };
    for lut in &net.luts {
        for inp in &lut.inputs {
            tally(inp);
        }
    }
    for ff in &net.ffs {
        tally(&ff.d);
    }
    for (_, src) in &net.outputs {
        tally(src);
    }

    // Decide packing: FF i packs into LUT j when ff.d == Lut(j) and LUT j
    // has exactly one consumer (the FF itself).
    let mut ff_packed_into: Vec<Option<u32>> = vec![None; net.ffs.len()];
    let mut lut_hosts_ff: Vec<Option<u32>> = vec![None; net.luts.len()];
    for (i, ff) in net.ffs.iter().enumerate() {
        if let LutIn::Lut(j) = ff.d {
            let j = j as usize;
            if lut_consumers[j] == 1 && lut_hosts_ff[j].is_none() {
                ff_packed_into[i] = Some(j as u32);
                lut_hosts_ff[j] = Some(i as u32);
            }
        }
    }

    // Block layout: one block per LUT, then one per unpacked FF, then
    // route-throughs for outputs fed by inputs/constants.
    let mut blocks: Vec<PackedBlock> = Vec::with_capacity(net.luts.len() + net.ffs.len());
    let lut_block: Vec<u32> = (0..net.luts.len() as u32).collect();
    for (j, lut) in net.luts.iter().enumerate() {
        let mut inputs = [BlockSource::None; 4];
        for (k, s) in lut.inputs.iter().enumerate() {
            inputs[k] = resolve_placeholder(s);
        }
        let ff = lut_hosts_ff[j].map(|i| net.ffs[i as usize].init);
        blocks.push(PackedBlock {
            lut_table: lut.table as u16,
            inputs,
            ff,
            out_from_ff: ff.is_some(),
        });
    }
    let mut ff_block = vec![0u32; net.ffs.len()];
    for (i, ff) in net.ffs.iter().enumerate() {
        if let Some(j) = ff_packed_into[i] {
            ff_block[i] = lut_block[j as usize];
        } else {
            // Route-through block: identity LUT on the d source.
            let idx = blocks.len() as u32;
            blocks.push(PackedBlock {
                lut_table: IDENTITY_LUT,
                inputs: [
                    resolve_placeholder(&ff.d),
                    BlockSource::None,
                    BlockSource::None,
                    BlockSource::None,
                ],
                ff: Some(ff.init),
                out_from_ff: true,
            });
            ff_block[i] = idx;
        }
    }

    // Second pass: rewrite placeholder references now that ff_block is known.
    let final_source = |s: &LutIn| -> BlockSource {
        match *s {
            LutIn::Input(b) => BlockSource::Input(b),
            LutIn::Const(c) => BlockSource::Const(c),
            LutIn::Lut(j) => BlockSource::Block(lut_block[j as usize]),
            LutIn::Ff(i) => BlockSource::Block(ff_block[i as usize]),
        }
    };
    for (j, lut) in net.luts.iter().enumerate() {
        for (k, s) in lut.inputs.iter().enumerate() {
            blocks[j].inputs[k] = final_source(s);
        }
    }
    for (i, ff) in net.ffs.iter().enumerate() {
        if ff_packed_into[i].is_none() {
            let bi = ff_block[i] as usize;
            blocks[bi].inputs[0] = final_source(&ff.d);
        }
    }

    // Outputs: bind to blocks, inserting route-throughs for raw inputs,
    // constants, and (already handled) FFs/LUTs.
    let mut outputs = Vec::with_capacity(net.outputs.len());
    for (name, src) in &net.outputs {
        let block = match *src {
            LutIn::Lut(j) => lut_block[j as usize],
            LutIn::Ff(i) => ff_block[i as usize],
            LutIn::Input(_) | LutIn::Const(_) => {
                let idx = blocks.len() as u32;
                blocks.push(PackedBlock {
                    lut_table: IDENTITY_LUT,
                    inputs: [
                        final_source(src),
                        BlockSource::None,
                        BlockSource::None,
                        BlockSource::None,
                    ],
                    ff: None,
                    out_from_ff: false,
                });
                idx
            }
        };
        outputs.push((name.clone(), block));
    }

    PackedCircuit {
        name: net.name.clone(),
        blocks,
        num_inputs: net.num_inputs,
        outputs,
        ff_block,
    }
}

/// First-pass source resolution (FF references filled in later).
fn resolve_placeholder(s: &LutIn) -> BlockSource {
    match *s {
        LutIn::Input(b) => BlockSource::Input(b),
        LutIn::Const(c) => BlockSource::Const(c),
        LutIn::Lut(j) => BlockSource::Block(j),
        LutIn::Ff(_) => BlockSource::None, // patched in second pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{map_to_luts, MapOptions};

    fn packed(net: &netlist::Netlist) -> PackedCircuit {
        pack(&map_to_luts(net, MapOptions::default()))
    }

    #[test]
    fn counter_packs_ffs_with_luts() {
        let net = netlist::library::seq::counter("c4", 4);
        let pc = packed(&net);
        assert_eq!(pc.ff_count(), 4);
        // The counter's next-state LUTs feed only their FFs... but the FF
        // outputs also feed the increment logic, which is fine: packing is
        // about the LUT's consumers, not the FF's.
        assert!(
            pc.block_count() <= 8,
            "4-bit counter should pack tightly, got {} blocks",
            pc.block_count()
        );
    }

    #[test]
    fn ff_block_mapping_is_valid() {
        let net = netlist::library::seq::lfsr("l8", 8, 0b10111000);
        let pc = packed(&net);
        assert_eq!(pc.ff_count(), 8);
        for &b in &pc.ff_block {
            let blk = &pc.blocks[b as usize];
            assert!(blk.ff.is_some(), "ff_block must point at a stateful block");
            assert!(blk.out_from_ff);
        }
    }

    #[test]
    fn output_from_input_gets_route_through() {
        let mut b = netlist::Builder::new("wire");
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y);
        b.output("a", a);
        b.output("x", x);
        let net = b.finish();
        let pc = packed(&net);
        // AND block + route-through for the passthrough output.
        assert_eq!(pc.block_count(), 2);
        let (_, rt) = &pc.outputs[1];
        let blk = &pc.blocks[*rt as usize];
        assert_eq!(blk.lut_table, 0b10, "identity LUT");
        assert_eq!(blk.inputs[0], BlockSource::Input(0));
    }

    #[test]
    fn shift_register_chain_packs_one_block_per_bit() {
        let net = netlist::library::seq::shift_register("sr8", 8);
        let pc = packed(&net);
        // Each stage is an FF fed by the previous FF: route-through per bit.
        assert_eq!(pc.ff_count(), 8);
        assert_eq!(pc.block_count(), 8);
    }

    #[test]
    fn block_references_are_in_range() {
        let net = netlist::library::arith::array_multiplier("m6", 6);
        let pc = packed(&net);
        for blk in &pc.blocks {
            for s in blk.inputs {
                if let BlockSource::Block(j) = s {
                    assert!((j as usize) < pc.blocks.len());
                }
            }
        }
        for (_, b) in &pc.outputs {
            assert!((*b as usize) < pc.blocks.len());
        }
    }

    #[test]
    fn combinational_circuit_has_no_state() {
        let net = netlist::library::logic::parity("p8", 8);
        let pc = packed(&net);
        assert!(!pc.is_sequential());
        assert_eq!(pc.ff_count(), 0);
    }
}
