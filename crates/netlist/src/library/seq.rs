//! Sequential circuits: counters, LFSRs, shift registers, accumulators,
//! serial CRC, and a pattern-matcher FSM.
//!
//! These are the circuits whose *state* the VFPGA operating system must
//! save and restore on preemption (paper §3) — every generator here keeps
//! all state in D flip-flops, so readback observes it completely.

use super::util::{add_bus, inc_bus};
use crate::gate::NodeId;
use crate::graph::{Builder, Netlist};

/// `width`-bit up-counter with enable.
///
/// Inputs: `en`; outputs: `q[width]`. Counts up by one each cycle `en` is 1.
pub fn counter(name: &str, width: usize) -> Netlist {
    assert!(width >= 1);
    let mut b = Builder::new(name);
    let en = b.input();
    let q: Vec<NodeId> = (0..width).map(|_| b.dff_placeholder(false)).collect();
    let (next, _) = inc_bus(&mut b, &q, en);
    for (&ff, &d) in q.iter().zip(&next) {
        b.connect_dff(ff, d);
    }
    b.output_bus("q", &q);
    b.finish()
}

/// Golden model for [`counter`]: state update.
pub fn golden_counter_step(q: u64, en: bool, width: usize) -> u64 {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    if en {
        (q + 1) & mask
    } else {
        q
    }
}

/// Fibonacci LFSR with the given tap mask (bit i set = stage i feeds the
/// XOR). Seeded with 1 (bit 0 set) at power-up; free-running.
///
/// Outputs: `q[width]`.
pub fn lfsr(name: &str, width: usize, taps: u64) -> Netlist {
    assert!(width >= 2);
    assert!(taps & 1 != 0 || taps != 0, "need at least one tap");
    let mut b = Builder::new(name);
    let q: Vec<NodeId> = (0..width).map(|i| b.dff_placeholder(i == 0)).collect();
    let tapped: Vec<NodeId> = (0..width)
        .filter(|i| (taps >> i) & 1 == 1)
        .map(|i| q[i])
        .collect();
    let fb = b.xor_tree(&tapped);
    // Shift left: q[i+1] <= q[i]; q[0] <= feedback.
    b.connect_dff(q[0], fb);
    for i in 1..width {
        b.connect_dff(q[i], q[i - 1]);
    }
    b.output_bus("q", &q);
    b.finish()
}

/// Golden model for [`lfsr`]: one step of the state.
pub fn golden_lfsr_step(q: u64, width: usize, taps: u64) -> u64 {
    let mask = (1u64 << width) - 1;
    let fb = ((q & taps).count_ones() % 2) as u64;
    ((q << 1) | fb) & mask
}

/// `width`-bit serial-in shift register.
///
/// Inputs: `sin`; outputs: `q[width]` (q\[0\] is the newest bit).
pub fn shift_register(name: &str, width: usize) -> Netlist {
    assert!(width >= 1);
    let mut b = Builder::new(name);
    let sin = b.input();
    let q: Vec<NodeId> = (0..width).map(|_| b.dff_placeholder(false)).collect();
    b.connect_dff(q[0], sin);
    for i in 1..width {
        b.connect_dff(q[i], q[i - 1]);
    }
    b.output_bus("q", &q);
    b.finish()
}

/// `width`-bit accumulator: adds the input bus into a register each cycle.
///
/// Inputs: `x[width]`; outputs: `acc[width]`.
pub fn accumulator(name: &str, width: usize) -> Netlist {
    assert!(width >= 1);
    let mut b = Builder::new(name);
    let xs = b.inputs(width);
    let acc: Vec<NodeId> = (0..width).map(|_| b.dff_placeholder(false)).collect();
    let zero = b.constant(false);
    let (next, _) = add_bus(&mut b, &acc, &xs, zero);
    for (&ff, &d) in acc.iter().zip(&next) {
        b.connect_dff(ff, d);
    }
    b.output_bus("acc", &acc);
    b.finish()
}

/// Golden model for [`accumulator`]: state update.
pub fn golden_accumulate_step(acc: u64, x: u64, width: usize) -> u64 {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    (acc + (x & mask)) & mask
}

/// Serial CRC register: consumes one message bit per cycle.
///
/// Inputs: `d`; outputs: `crc[crc_width]`. Matches
/// [`super::codes::golden_crc`] after feeding the message LSB-first.
pub fn crc_serial(name: &str, poly: u64, crc_width: usize) -> Netlist {
    assert!((2..=32).contains(&crc_width));
    let mut b = Builder::new(name);
    let d = b.input();
    let reg: Vec<NodeId> = (0..crc_width).map(|_| b.dff_placeholder(false)).collect();
    let msb = reg[crc_width - 1];
    let fb = b.xor(msb, d);
    let zero = b.constant(false);
    for i in 0..crc_width {
        let shifted = if i == 0 { zero } else { reg[i - 1] };
        let next = if (poly >> i) & 1 == 1 {
            b.xor(shifted, fb)
        } else {
            shifted
        };
        b.connect_dff(reg[i], next);
    }
    b.output_bus("crc", &reg);
    b.finish()
}

/// Moore FSM that raises `hit` for one cycle after seeing the serial
/// pattern `1011` (overlapping matches allowed). 2-bit state register.
///
/// Inputs: `x`; outputs: `hit`.
pub fn pattern_fsm(name: &str) -> Netlist {
    // States: 0=idle, 1=saw "1", 2=saw "10", 3=saw "101"; hit when in 3 and x=1.
    let mut b = Builder::new(name);
    let x = b.input();
    let s0 = b.dff_placeholder(false); // state bit 0
    let s1 = b.dff_placeholder(false); // state bit 1

    // Next-state logic, derived from the transition table:
    // state 0: x? ->1 : ->0      state 1: x? ->1 : ->2
    // state 2: x? ->3 : ->0      state 3: x? ->1 : ->2
    let ns0 = b.not(s0);
    let ns1 = b.not(s1);
    let in0 = b.and(ns0, ns1);
    let in1 = b.and(s0, ns1);
    let in2 = b.and(ns0, s1);
    let in3 = b.and(s0, s1);
    let nx = b.not(x);

    // next bit0 = x & (in0|in1|in3)  |  x & in2   (to states 1 or 3: bit0=1)
    let to1 = {
        let a = b.or(in0, in1);
        let c = b.or(a, in3);
        b.and(x, c)
    };
    let to3 = b.and(x, in2);
    let nb0 = b.or(to1, to3);
    // next bit1 = (!x & (in1|in3)) -> state2   |  to3 -> state3
    let to2 = {
        let a = b.or(in1, in3);
        b.and(nx, a)
    };
    let nb1 = b.or(to2, to3);
    b.connect_dff(s0, nb0);
    b.connect_dff(s1, nb1);

    let hit = b.and(in3, x);
    b.output("hit", hit);
    b.finish()
}

/// Golden model for [`pattern_fsm`]: `(next_state, hit)` from `(state, x)`.
pub fn golden_pattern_step(state: u8, x: bool) -> (u8, bool) {
    let hit = state == 3 && x;
    let next = match (state, x) {
        (0, false) => 0,
        (0, true) => 1,
        (1, false) => 2,
        (1, true) => 1,
        (2, false) => 0,
        (2, true) => 3,
        (3, false) => 2,
        (3, true) => 1,
        _ => unreachable!("invalid FSM state"),
    };
    (next, hit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn out_u64(sim: &Simulator, n: usize) -> u64 {
        (0..n).fold(0u64, |acc, i| acc | ((sim.output(i) & 1) << i))
    }

    #[test]
    fn counter_counts_and_wraps() {
        let n = counter("c3", 3);
        let mut sim = Simulator::new(&n);
        let mut expect = 0u64;
        for step in 0..20 {
            let en = step % 3 != 0;
            sim.eval(&[if en { u64::MAX } else { 0 }]);
            assert_eq!(out_u64(&sim, 3), expect, "step {step}");
            sim.clock();
            expect = golden_counter_step(expect, en, 3);
        }
    }

    #[test]
    fn lfsr_matches_golden_and_has_full_period() {
        // x^4 + x^3 + 1 is maximal for width 4: taps at stages 3 and 2.
        let taps = 0b1100;
        let n = lfsr("l4", 4, taps);
        let mut sim = Simulator::new(&n);
        let mut state = 1u64;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..15 {
            sim.eval(&[]);
            assert_eq!(out_u64(&sim, 4), state);
            seen.insert(state);
            sim.clock();
            state = golden_lfsr_step(state, 4, taps);
        }
        assert_eq!(seen.len(), 15, "maximal LFSR visits all nonzero states");
    }

    #[test]
    fn shift_register_delays() {
        let n = shift_register("s4", 4);
        let mut sim = Simulator::new(&n);
        let pattern = [true, true, false, true, false, false, true, true];
        let mut hist: Vec<bool> = Vec::new();
        for &p in &pattern {
            sim.step(&[if p { u64::MAX } else { 0 }]);
            hist.push(p);
            sim.eval(&[0]);
            // q[i] should equal the input from i cycles ago.
            for i in 0..4.min(hist.len()) {
                let expect = hist[hist.len() - 1 - i];
                assert_eq!(
                    sim.output(i) & 1 == 1,
                    expect,
                    "tap {i} after {} bits",
                    hist.len()
                );
            }
        }
    }

    #[test]
    fn accumulator_sums() {
        let n = accumulator("a8", 8);
        let mut sim = Simulator::new(&n);
        let mut acc = 0u64;
        for x in [3u64, 250, 7, 99, 1] {
            let words: Vec<u64> = (0..8)
                .map(|i| if (x >> i) & 1 == 1 { 1 } else { 0 })
                .collect();
            sim.eval(&words);
            assert_eq!(out_u64(&sim, 8) & 1, acc & 1); // lane 0 check
            sim.clock();
            acc = golden_accumulate_step(acc, x, 8);
        }
        sim.eval(&[0u64; 8]);
        assert_eq!(out_u64(&sim, 8), acc);
    }

    #[test]
    fn serial_crc_matches_combinational_golden() {
        let n = crc_serial("crc8s", super::super::codes::CRC8, 8);
        let mut sim = Simulator::new(&n);
        let msg = 0b1011_0010u64;
        for i in 0..8 {
            sim.step(&[(msg >> i) & 1]);
        }
        sim.eval(&[0]);
        let got = out_u64(&sim, 8);
        assert_eq!(
            got,
            super::super::codes::golden_crc(super::super::codes::CRC8, 8, msg, 8)
        );
    }

    #[test]
    fn pattern_fsm_detects_overlapping() {
        let n = pattern_fsm("p");
        let mut sim = Simulator::new(&n);
        // Stream: 1 0 1 1 0 1 1 -> hits at positions 3 and 6 (0-indexed).
        let stream = [true, false, true, true, false, true, true];
        let mut state = 0u8;
        for (i, &x) in stream.iter().enumerate() {
            sim.eval(&[if x { u64::MAX } else { 0 }]);
            let (next, hit) = golden_pattern_step(state, x);
            assert_eq!(sim.output(0) & 1 == 1, hit, "bit {i}");
            sim.clock();
            state = next;
        }
    }

    #[test]
    fn state_save_restore_on_lfsr() {
        let n = lfsr("l8", 8, 0b10111000);
        let mut sim = Simulator::new(&n);
        for _ in 0..10 {
            sim.step(&[]);
        }
        let snap = sim.read_state();
        let mut traj1 = Vec::new();
        for _ in 0..5 {
            sim.step(&[]);
            traj1.push(sim.read_state());
        }
        sim.load_state(&snap);
        let mut traj2 = Vec::new();
        for _ in 0..5 {
            sim.step(&[]);
            traj2.push(sim.read_state());
        }
        assert_eq!(traj1, traj2);
    }
}

/// Johnson (twisted-ring) counter of `width` stages: a shift ring whose
/// feedback is the inverted last stage, cycling through `2*width` states
/// with single-bit transitions.
///
/// Outputs: `q[width]`.
pub fn johnson_counter(name: &str, width: usize) -> Netlist {
    assert!(width >= 2);
    let mut b = Builder::new(name);
    let q: Vec<NodeId> = (0..width).map(|_| b.dff_placeholder(false)).collect();
    let fb = b.not(q[width - 1]);
    b.connect_dff(q[0], fb);
    for i in 1..width {
        b.connect_dff(q[i], q[i - 1]);
    }
    b.output_bus("q", &q);
    b.finish()
}

/// Golden model for [`johnson_counter`]: one state step.
pub fn golden_johnson_step(q: u64, width: usize) -> u64 {
    let mask = (1u64 << width) - 1;
    let last = (q >> (width - 1)) & 1;
    ((q << 1) | (1 - last)) & mask
}

/// Decimal (mod-10) BCD counter with enable and terminal-count output.
///
/// Inputs: `en`; outputs: `q[4]`, `tc` (1 while q == 9).
pub fn bcd_counter(name: &str) -> Netlist {
    let mut b = Builder::new(name);
    let en = b.input();
    let q: Vec<NodeId> = (0..4).map(|_| b.dff_placeholder(false)).collect();
    let nine = super::util::const_bus(&mut b, 9, 4);
    let tc = super::util::eq_bus(&mut b, &q, &nine);
    let (incremented, _) = inc_bus(&mut b, &q, en);
    let zero4 = super::util::const_bus(&mut b, 0, 4);
    // wrap: if en && tc -> 0 else incremented
    let wrap = b.and(en, tc);
    let next = super::util::mux_bus(&mut b, wrap, &incremented, &zero4);
    for (&ff, &d) in q.iter().zip(&next) {
        b.connect_dff(ff, d);
    }
    b.output_bus("q", &q);
    b.output("tc", tc);
    b.finish()
}

/// Golden model for [`bcd_counter`]: `(next_q, tc_now)`.
pub fn golden_bcd_step(q: u64, en: bool) -> (u64, bool) {
    let tc = q == 9;
    let next = if !en {
        q
    } else if tc {
        0
    } else {
        q + 1
    };
    (next, tc)
}

/// A traffic-light Moore FSM: green (2 cycles) → yellow (1) → red (2),
/// frozen while `hold` is high — the embedded-control style controller.
///
/// Inputs: `hold`; outputs: `green`, `yellow`, `red`.
pub fn traffic_light(name: &str) -> Netlist {
    // 5 states 0..4: 0,1 green; 2 yellow; 3,4 red. 3-bit counter-like FSM.
    let mut b = Builder::new(name);
    let hold = b.input();
    let s: Vec<NodeId> = (0..3).map(|_| b.dff_placeholder(false)).collect();
    let four = super::util::const_bus(&mut b, 4, 3);
    let at_end = super::util::eq_bus(&mut b, &s, &four);
    let advance = b.not(hold);
    let (inc, _) = inc_bus(&mut b, &s, advance);
    let zero3 = super::util::const_bus(&mut b, 0, 3);
    let wrap = b.and(advance, at_end);
    let next = super::util::mux_bus(&mut b, wrap, &inc, &zero3);
    for (&ff, &d) in s.iter().zip(&next) {
        b.connect_dff(ff, d);
    }
    // Decode: green = s in {0,1} (s2==0 && s1==0... states 0b000,0b001);
    let ns2 = b.not(s[2]);
    let ns1 = b.not(s[1]);
    let green = b.and(ns2, ns1);
    // yellow = state 2 = 0b010
    let ns0 = b.not(s[0]);
    let y1 = b.and(ns2, s[1]);
    let yellow = b.and(y1, ns0);
    // red = states 3 (0b011), 4 (0b100)
    let r3 = {
        let t = b.and(s[1], s[0]);
        b.and(ns2, t)
    };
    let red = b.or(r3, s[2]);
    b.output("green", green);
    b.output("yellow", yellow);
    b.output("red", red);
    b.finish()
}

/// Golden model for [`traffic_light`]: `(next_state, (g, y, r))`.
pub fn golden_traffic_step(state: u8, hold: bool) -> (u8, (bool, bool, bool)) {
    let lights = match state {
        0 | 1 => (true, false, false),
        2 => (false, true, false),
        _ => (false, false, true),
    };
    let next = if hold {
        state
    } else if state >= 4 {
        0
    } else {
        state + 1
    };
    (next, lights)
}

#[cfg(test)]
mod ext_seq_tests {
    use super::*;
    use crate::sim::Simulator;

    fn out_u64(sim: &Simulator, n: usize) -> u64 {
        (0..n).fold(0u64, |acc, i| acc | ((sim.output(i) & 1) << i))
    }

    #[test]
    fn johnson_counter_cycles_with_period_2w() {
        let n = johnson_counter("j4", 4);
        let mut sim = Simulator::new(&n);
        let mut state = 0u64;
        let mut seen = Vec::new();
        for _ in 0..8 {
            sim.eval(&[]);
            assert_eq!(out_u64(&sim, 4), state);
            seen.push(state);
            sim.clock();
            state = golden_johnson_step(state, 4);
        }
        // Period 8: state returns to 0.
        sim.eval(&[]);
        assert_eq!(out_u64(&sim, 4), 0);
        // All 8 states distinct, adjacent states differ by one bit.
        let set: std::collections::HashSet<_> = seen.iter().collect();
        assert_eq!(set.len(), 8);
        for w in seen.windows(2) {
            assert_eq!((w[0] ^ w[1]).count_ones(), 1);
        }
    }

    #[test]
    fn bcd_counter_wraps_at_ten() {
        let n = bcd_counter("bcd");
        let mut sim = Simulator::new(&n);
        let mut q = 0u64;
        for step in 0..25 {
            let en = step % 4 != 3;
            sim.eval(&[if en { u64::MAX } else { 0 }]);
            assert_eq!(out_u64(&sim, 4), q, "step {step}");
            let (next, tc) = golden_bcd_step(q, en);
            assert_eq!(sim.output(4) & 1 == 1, tc, "tc at step {step}");
            sim.clock();
            q = next;
        }
    }

    #[test]
    fn traffic_light_sequences_and_holds() {
        let n = traffic_light("tl");
        let mut sim = Simulator::new(&n);
        let mut state = 0u8;
        for step in 0..20 {
            let hold = step % 7 == 3;
            sim.eval(&[if hold { u64::MAX } else { 0 }]);
            let (next, (g, y, r)) = golden_traffic_step(state, hold);
            assert_eq!(sim.output(0) & 1 == 1, g, "green at {step}");
            assert_eq!(sim.output(1) & 1 == 1, y, "yellow at {step}");
            assert_eq!(sim.output(2) & 1 == 1, r, "red at {step}");
            // Exactly one light at a time.
            assert_eq!((g as u8) + (y as u8) + (r as u8), 1);
            sim.clock();
            state = next;
        }
    }

    #[test]
    fn new_sequential_circuits_map_and_match() {
        for net in [
            johnson_counter("j", 5),
            bcd_counter("b"),
            traffic_light("t"),
        ] {
            let mapped = crate::map_to_luts(&net, crate::MapOptions::default());
            assert_eq!(mapped.validate(), Ok(()));
            let mut gsim = Simulator::new(&net);
            let mut lsim = crate::lutnet::LutSimulator::new(&mapped);
            let w = net.num_inputs();
            for step in 0..30u64 {
                let inputs: Vec<u64> = (0..w).map(|i| step.wrapping_mul(0x9E3779B9) >> i).collect();
                gsim.eval(&inputs);
                lsim.eval(&inputs);
                assert_eq!(
                    gsim.outputs(),
                    lsim.outputs(&inputs),
                    "{} step {step}",
                    net.name()
                );
                gsim.clock();
                lsim.clock(&inputs);
            }
        }
    }
}
