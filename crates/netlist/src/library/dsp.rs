//! DSP datapaths: FIR filter and moving-average — the paper's multimedia
//! scenario ("voice and image compression/decompression algorithms").

use super::util::{add_bus, resize_bus, shl_const};
use crate::gate::NodeId;
use crate::graph::{Builder, Netlist};

/// Direct-form FIR filter with small constant coefficients.
///
/// Inputs: `x[width]`; outputs: `y[width + headroom]` where `headroom`
/// covers the coefficient sum. Multiplication by constants is realized as
/// shift-and-add, the standard FPGA idiom. The delay line is a chain of
/// registered buses, so the circuit carries `width * (taps-1)` bits of
/// state — the heaviest state-save workload in the library.
pub fn fir(name: &str, width: usize, coeffs: &[u64]) -> Netlist {
    assert!(width >= 1);
    assert!(!coeffs.is_empty());
    let sum: u64 = coeffs.iter().sum();
    assert!(sum > 0, "all-zero FIR is degenerate");
    let headroom = 64 - sum.leading_zeros() as usize;
    let out_w = width + headroom;

    let mut b = Builder::new(name);
    let x = b.inputs(width);

    // Delay line: stage 0 is the live input, stage i is x delayed i cycles.
    let mut stages: Vec<Vec<NodeId>> = vec![x.clone()];
    for s in 1..coeffs.len() {
        let prev = stages[s - 1].clone();
        let regs: Vec<NodeId> = prev.iter().map(|&p| b.dff(p, false)).collect();
        stages.push(regs);
    }

    // y = sum over taps of coeff * stage, coeff realized by shift-adds.
    let zero = b.constant(false);
    let mut acc: Vec<NodeId> = vec![zero; out_w];
    for (s, &c) in coeffs.iter().enumerate() {
        let stage_w = resize_bus(&mut b, &stages[s], out_w);
        let mut bit = 0usize;
        let mut cc = c;
        while cc != 0 {
            if cc & 1 == 1 {
                let shifted = shl_const(&mut b, &stage_w, bit);
                let (next, _) = add_bus(&mut b, &acc, &shifted, zero);
                acc = next;
            }
            cc >>= 1;
            bit += 1;
        }
    }
    b.output_bus("y", &acc);
    b.finish()
}

/// Golden model for [`fir`]: one output sample given the current input and
/// the delay-line history (`history[0]` = newest past input).
pub fn golden_fir_sample(x: u64, history: &[u64], coeffs: &[u64], width: usize) -> u64 {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    let sum: u64 = coeffs.iter().sum();
    let headroom = 64 - sum.leading_zeros() as usize;
    let out_mask = if width + headroom >= 64 {
        u64::MAX
    } else {
        (1 << (width + headroom)) - 1
    };
    let mut y = coeffs[0].wrapping_mul(x & mask);
    for (i, &c) in coeffs.iter().enumerate().skip(1) {
        let h = history.get(i - 1).copied().unwrap_or(0) & mask;
        y = y.wrapping_add(c.wrapping_mul(h));
    }
    y & out_mask
}

/// Moving-average of the last `taps` inputs (all coefficients 1) — the
/// cheap smoothing filter of the embedded-control scenario.
pub fn moving_sum(name: &str, width: usize, taps: usize) -> Netlist {
    assert!(taps >= 1);
    let coeffs = vec![1u64; taps];
    fir(name, width, &coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn in_words(x: u64, w: usize) -> Vec<u64> {
        (0..w).map(|i| (x >> i) & 1).collect()
    }

    fn out_u64(sim: &Simulator, n: usize) -> u64 {
        (0..n).fold(0u64, |acc, i| acc | ((sim.output(i) & 1) << i))
    }

    #[test]
    fn fir_impulse_response_is_coefficients() {
        let coeffs = [3u64, 5, 2];
        let n = fir("f", 4, &coeffs);
        let out_w = n.outputs().len();
        let mut sim = Simulator::new(&n);
        // Impulse: x = 1, then zeros. Output at time t is coeffs[t].
        let mut got = Vec::new();
        for t in 0..5 {
            let x = if t == 0 { 1u64 } else { 0 };
            sim.eval(&in_words(x, 4));
            got.push(out_u64(&sim, out_w));
            sim.clock();
        }
        assert_eq!(got, vec![3, 5, 2, 0, 0]);
    }

    #[test]
    fn fir_matches_golden_on_random_stream() {
        let coeffs = [1u64, 4, 2, 7];
        let w = 5;
        let n = fir("f", w, &coeffs);
        let out_w = n.outputs().len();
        let mut sim = Simulator::new(&n);
        let stream = [9u64, 30, 1, 17, 22, 5, 31, 0, 13];
        let mut hist: Vec<u64> = Vec::new();
        for &x in &stream {
            sim.eval(&in_words(x, w));
            let expect = golden_fir_sample(x, &hist, &coeffs, w);
            assert_eq!(out_u64(&sim, out_w), expect, "x={x} hist={hist:?}");
            sim.clock();
            hist.insert(0, x);
        }
    }

    #[test]
    fn moving_sum_sums_window() {
        let n = moving_sum("ms", 4, 3);
        let out_w = n.outputs().len();
        let mut sim = Simulator::new(&n);
        let stream = [2u64, 3, 5, 7, 11 & 0xF];
        let mut window: Vec<u64> = Vec::new();
        for &x in &stream {
            sim.eval(&in_words(x, 4));
            window.insert(0, x);
            window.truncate(3);
            let expect: u64 = window.iter().sum();
            assert_eq!(out_u64(&sim, out_w), expect);
            sim.clock();
        }
    }

    #[test]
    fn fir_state_width_scales_with_taps() {
        let f2 = fir("f2", 8, &[1, 1]);
        let f5 = fir("f5", 8, &[1, 1, 1, 1, 1]);
        assert_eq!(f2.stats().dffs, 8);
        assert_eq!(f5.stats().dffs, 32);
    }
}
