//! Arithmetic circuits: adders, subtractors, multipliers.

use super::util::{add_bus, full_adder, sub_bus};
use crate::graph::{Builder, Netlist};

/// `width`-bit ripple-carry adder.
///
/// Inputs: `a[width]`, `b[width]`; outputs: `sum[width]`, `cout`.
pub fn ripple_adder(name: &str, width: usize) -> Netlist {
    assert!(width >= 1);
    let mut b = Builder::new(name);
    let xs = b.inputs(width);
    let ys = b.inputs(width);
    let zero = b.constant(false);
    let (sum, cout) = add_bus(&mut b, &xs, &ys, zero);
    b.output_bus("sum", &sum);
    b.output("cout", cout);
    b.finish()
}

/// Golden model for [`ripple_adder`]: returns `(sum mod 2^w, carry)`.
pub fn golden_add(a: u64, b: u64, width: usize) -> (u64, bool) {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    let full = (a & mask) + (b & mask);
    (full & mask, full > mask)
}

/// `width`-bit subtractor (two's complement).
///
/// Inputs: `a[width]`, `b[width]`; outputs: `diff[width]`, `ge` (1 iff a ≥ b).
pub fn subtractor(name: &str, width: usize) -> Netlist {
    assert!(width >= 1);
    let mut b = Builder::new(name);
    let xs = b.inputs(width);
    let ys = b.inputs(width);
    let (diff, ge) = sub_bus(&mut b, &xs, &ys);
    b.output_bus("diff", &diff);
    b.output("ge", ge);
    b.finish()
}

/// Golden model for [`subtractor`].
pub fn golden_sub(a: u64, b: u64, width: usize) -> (u64, bool) {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    ((a.wrapping_sub(b)) & mask, (a & mask) >= (b & mask))
}

/// `width × width` unsigned array multiplier.
///
/// Inputs: `a[width]`, `b[width]`; outputs: `p[2*width]`.
///
/// Classic carry-save array: AND partial products, rows of full adders.
/// Area grows quadratically — the library's "large circuit", used to
/// exercise partition-overflow paths.
pub fn array_multiplier(name: &str, width: usize) -> Netlist {
    assert!(width >= 1);
    let mut b = Builder::new(name);
    let xs = b.inputs(width);
    let ys = b.inputs(width);
    let zero = b.constant(false);

    // pp[j] = xs AND ys[j], shifted left j.
    let mut acc: Vec<crate::gate::NodeId> = vec![zero; 2 * width];
    for (j, &yj) in ys.iter().enumerate() {
        let pp: Vec<_> = xs.iter().map(|&x| b.and(x, yj)).collect();
        // acc[j..j+width] += pp, ripple.
        let mut carry = zero;
        for (i, &p) in pp.iter().enumerate() {
            let (s, c) = full_adder(&mut b, acc[j + i], p, carry);
            acc[j + i] = s;
            carry = c;
        }
        // Propagate the final carry upward.
        let mut k = j + width;
        while k < 2 * width {
            let s = b.xor(acc[k], carry);
            let c = b.and(acc[k], carry);
            acc[k] = s;
            carry = c;
            k += 1;
        }
    }
    b.output_bus("p", &acc);
    b.finish()
}

/// Golden model for [`array_multiplier`].
pub fn golden_mul(a: u64, b: u64, width: usize) -> u64 {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    (a & mask).wrapping_mul(b & mask)
}

/// `width`-bit carry-select adder: computes the upper half for both carry
/// values and selects. Slightly larger but shallower than ripple —
/// included so experiments have two area/depth variants of the same
/// function (the paper's §4 note that partition shape constrains which
/// circuit variant can be used).
pub fn carry_select_adder(name: &str, width: usize) -> Netlist {
    assert!(width >= 2);
    let half = width / 2;
    let mut b = Builder::new(name);
    let xs = b.inputs(width);
    let ys = b.inputs(width);
    let zero = b.constant(false);
    let one = b.constant(true);

    let (lo_sum, lo_carry) = add_bus(&mut b, &xs[..half], &ys[..half], zero);
    let (hi0, c0) = add_bus(&mut b, &xs[half..], &ys[half..], zero);
    let (hi1, c1) = add_bus(&mut b, &xs[half..], &ys[half..], one);
    let hi = super::util::mux_bus(&mut b, lo_carry, &hi0, &hi1);
    let cout = b.mux(lo_carry, c0, c1);

    let mut sum = lo_sum;
    sum.extend(hi);
    b.output_bus("sum", &sum);
    b.output("cout", cout);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_comb;

    fn bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn to_u64(bs: &[bool]) -> u64 {
        bs.iter()
            .enumerate()
            .fold(0, |a, (i, &b)| a | ((b as u64) << i))
    }

    #[test]
    fn ripple_adder_exhaustive_4bit() {
        let n = ripple_adder("a4", 4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut inp = bits(a, 4);
                inp.extend(bits(b, 4));
                let out = eval_comb(&n, &inp);
                let (sum, c) = golden_add(a, b, 4);
                assert_eq!(to_u64(&out[..4]), sum);
                assert_eq!(out[4], c);
            }
        }
    }

    #[test]
    fn carry_select_matches_ripple() {
        let r = ripple_adder("r6", 6);
        let c = carry_select_adder("c6", 6);
        for a in (0..64u64).step_by(5) {
            for b in (0..64u64).step_by(7) {
                let mut inp = bits(a, 6);
                inp.extend(bits(b, 6));
                assert_eq!(eval_comb(&r, &inp), eval_comb(&c, &inp), "{a}+{b}");
            }
        }
    }

    #[test]
    fn subtractor_exhaustive_4bit() {
        let n = subtractor("s4", 4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut inp = bits(a, 4);
                inp.extend(bits(b, 4));
                let out = eval_comb(&n, &inp);
                let (d, ge) = golden_sub(a, b, 4);
                assert_eq!(to_u64(&out[..4]), d, "{a}-{b}");
                assert_eq!(out[4], ge);
            }
        }
    }

    #[test]
    fn multiplier_exhaustive_4bit() {
        let n = array_multiplier("m4", 4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut inp = bits(a, 4);
                inp.extend(bits(b, 4));
                let out = eval_comb(&n, &inp);
                assert_eq!(to_u64(&out), golden_mul(a, b, 4), "{a}*{b}");
            }
        }
    }

    #[test]
    fn multiplier_area_grows_quadratically() {
        let m4 = array_multiplier("m4", 4).stats().gates;
        let m8 = array_multiplier("m8", 8).stats().gates;
        let ratio = m8 as f64 / m4 as f64;
        assert!(
            (3.0..5.5).contains(&ratio),
            "8-bit multiplier should be ~4x the 4-bit one, ratio {ratio}"
        );
    }
}
