//! Parametric generator circuits.
//!
//! The paper motivates VFPGAs with application circuits — codec banks,
//! modem encoders, network protocol engines, storage-array codecs,
//! embedded-control diagnosis. This module provides the concrete circuits
//! those suites are assembled from, each with a software *golden model*
//! used both for verification and as the software-execution baseline in
//! experiment E12.
//!
//! Submodules:
//! * [`util`] — bus-level construction helpers on [`crate::Builder`],
//! * [`arith`] — adders, subtractors, multipliers,
//! * [`logic`] — comparators, parity, popcount, encoders, shifters,
//! * [`codes`] — CRC, Hamming, Gray code,
//! * [`seq`] — counters, LFSRs, shift registers, accumulators, FSMs,
//! * [`dsp`] — FIR filter datapath,
//! * [`ext`] — divider, Booth multiplier, bitonic sorter, 7-segment, BCD,
//! * [`alu`] — a small multi-function ALU.

pub mod alu;
pub mod arith;
pub mod codes;
pub mod dsp;
pub mod ext;
pub mod logic;
pub mod seq;
pub mod util;
