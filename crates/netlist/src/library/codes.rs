//! Error-detection and encoding circuits: CRC, Hamming(7,4), Gray code.
//!
//! These stand in for the paper's telecom/networking/storage scenarios
//! ("modems, faxes, switching systems … complex disk arrays"), where the
//! VFPGA swaps encoding algorithms depending on the communication partner.

use crate::gate::NodeId;
use crate::graph::{Builder, Netlist};

/// Combinational CRC over a `data_width`-bit message with the given
/// polynomial (implicit leading 1, `crc_width` remainder bits), starting
/// from an all-zero register.
///
/// Inputs: `d[data_width]` (bit 0 processed first); outputs: `crc[crc_width]`.
pub fn crc_comb(name: &str, poly: u64, crc_width: usize, data_width: usize) -> Netlist {
    assert!((1..=32).contains(&crc_width));
    assert!(data_width >= 1);
    let mut b = Builder::new(name);
    let data = b.inputs(data_width);
    let zero = b.constant(false);
    let mut reg: Vec<NodeId> = vec![zero; crc_width];
    for &d in &data {
        // One shift step: feedback = msb XOR d; reg <<= 1; reg ^= fb ? poly : 0.
        let msb = reg[crc_width - 1];
        let fb = b.xor(msb, d);
        let mut next = Vec::with_capacity(crc_width);
        for i in 0..crc_width {
            let shifted = if i == 0 { zero } else { reg[i - 1] };
            let v = if (poly >> i) & 1 == 1 {
                b.xor(shifted, fb)
            } else {
                shifted
            };
            next.push(v);
        }
        reg = next;
    }
    b.output_bus("crc", &reg);
    b.finish()
}

/// Golden model for [`crc_comb`] (and the serial CRC in `seq`): processes
/// `data` LSB-first through the shift register.
pub fn golden_crc(poly: u64, crc_width: usize, data: u64, data_width: usize) -> u64 {
    let mask = if crc_width >= 64 {
        u64::MAX
    } else {
        (1 << crc_width) - 1
    };
    let mut reg = 0u64;
    for i in 0..data_width {
        let d = (data >> i) & 1;
        let msb = (reg >> (crc_width - 1)) & 1;
        let fb = msb ^ d;
        reg = (reg << 1) & mask;
        if fb == 1 {
            reg ^= poly & mask;
        }
    }
    reg
}

/// CRC-16/CCITT polynomial (x^16 + x^12 + x^5 + 1).
pub const CRC16_CCITT: u64 = 0x1021;
/// CRC-8 polynomial (x^8 + x^2 + x + 1).
pub const CRC8: u64 = 0x07;

/// Hamming(7,4) encoder. Inputs: `d[4]`; outputs: `c[7]`.
///
/// Codeword layout (LSB-first): c0=p1, c1=p2, c2=d0, c3=p4, c4=d1, c5=d2, c6=d3.
pub fn hamming74_encode(name: &str) -> Netlist {
    let mut b = Builder::new(name);
    let d = b.inputs(4);
    let p1 = {
        let t = b.xor(d[0], d[1]);
        b.xor(t, d[3])
    };
    let p2 = {
        let t = b.xor(d[0], d[2]);
        b.xor(t, d[3])
    };
    let p4 = {
        let t = b.xor(d[1], d[2]);
        b.xor(t, d[3])
    };
    let code = [p1, p2, d[0], p4, d[1], d[2], d[3]];
    b.output_bus("c", &code);
    b.finish()
}

/// Golden model for [`hamming74_encode`].
pub fn golden_hamming74_encode(d: u64) -> u64 {
    let d0 = d & 1;
    let d1 = (d >> 1) & 1;
    let d2 = (d >> 2) & 1;
    let d3 = (d >> 3) & 1;
    let p1 = d0 ^ d1 ^ d3;
    let p2 = d0 ^ d2 ^ d3;
    let p4 = d1 ^ d2 ^ d3;
    p1 | (p2 << 1) | (d0 << 2) | (p4 << 3) | (d1 << 4) | (d2 << 5) | (d3 << 6)
}

/// Hamming(7,4) decoder with single-error correction.
///
/// Inputs: `c[7]`; outputs: `d[4]`, `err` (1 iff a correction was applied).
pub fn hamming74_decode(name: &str) -> Netlist {
    let mut b = Builder::new(name);
    let c = b.inputs(7);
    // Syndrome bits (1-indexed positions).
    let s1 = {
        let t1 = b.xor(c[0], c[2]);
        let t2 = b.xor(c[4], c[6]);
        b.xor(t1, t2)
    };
    let s2 = {
        let t1 = b.xor(c[1], c[2]);
        let t2 = b.xor(c[5], c[6]);
        b.xor(t1, t2)
    };
    let s4 = {
        let t1 = b.xor(c[3], c[4]);
        let t2 = b.xor(c[5], c[6]);
        b.xor(t1, t2)
    };
    let err = {
        let t = b.or(s1, s2);
        b.or(t, s4)
    };
    // Correct position s (1..=7): flip c[s-1].
    let mut corrected = Vec::with_capacity(7);
    for (i, &ci) in c.iter().enumerate() {
        let pos = (i + 1) as u64;
        // at_pos = (s1==pos.bit0) & (s2==pos.bit1) & (s4==pos.bit2)
        let b0 = if pos & 1 == 1 { s1 } else { b.not(s1) };
        let b1 = if (pos >> 1) & 1 == 1 { s2 } else { b.not(s2) };
        let b2 = if (pos >> 2) & 1 == 1 { s4 } else { b.not(s4) };
        let t = b.and(b0, b1);
        let at_pos = b.and(t, b2);
        let flipped = b.xor(ci, at_pos);
        corrected.push(flipped);
    }
    let d = [corrected[2], corrected[4], corrected[5], corrected[6]];
    b.output_bus("d", &d);
    b.output("err", err);
    b.finish()
}

/// Golden model for [`hamming74_decode`]: `(data, corrected)`.
pub fn golden_hamming74_decode(c: u64) -> (u64, bool) {
    let bit = |i: usize| (c >> i) & 1;
    let s1 = bit(0) ^ bit(2) ^ bit(4) ^ bit(6);
    let s2 = bit(1) ^ bit(2) ^ bit(5) ^ bit(6);
    let s4 = bit(3) ^ bit(4) ^ bit(5) ^ bit(6);
    let syndrome = s1 | (s2 << 1) | (s4 << 2);
    let mut cw = c;
    if syndrome != 0 {
        cw ^= 1 << (syndrome - 1);
    }
    let bitc = |i: usize| (cw >> i) & 1;
    let d = bitc(2) | (bitc(4) << 1) | (bitc(5) << 2) | (bitc(6) << 3);
    (d, syndrome != 0)
}

/// Binary→Gray encoder. Inputs: `b[width]`; outputs: `g[width]`.
pub fn gray_encode(name: &str, width: usize) -> Netlist {
    assert!(width >= 1);
    let mut bld = Builder::new(name);
    let xs = bld.inputs(width);
    let mut g = Vec::with_capacity(width);
    for i in 0..width {
        if i + 1 < width {
            g.push(bld.xor(xs[i], xs[i + 1]));
        } else {
            g.push(xs[i]);
        }
    }
    bld.output_bus("g", &g);
    bld.finish()
}

/// Gray→binary decoder. Inputs: `g[width]`; outputs: `b[width]`.
pub fn gray_decode(name: &str, width: usize) -> Netlist {
    assert!(width >= 1);
    let mut bld = Builder::new(name);
    let gs = bld.inputs(width);
    let mut b = vec![gs[width - 1]];
    for i in (0..width - 1).rev() {
        let prev = b[b.len() - 1];
        b.push(bld.xor(gs[i], prev));
    }
    b.reverse();
    bld.output_bus("b", &b);
    bld.finish()
}

/// Golden model for [`gray_encode`].
pub fn golden_gray_encode(v: u64) -> u64 {
    v ^ (v >> 1)
}

/// Golden model for [`gray_decode`].
pub fn golden_gray_decode(mut g: u64) -> u64 {
    let mut v = g;
    while g != 0 {
        g >>= 1;
        v ^= g;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_comb;

    fn bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn to_u64(bs: &[bool]) -> u64 {
        bs.iter()
            .enumerate()
            .fold(0, |a, (i, &b)| a | ((b as u64) << i))
    }

    #[test]
    fn crc8_matches_golden() {
        let n = crc_comb("crc8", CRC8, 8, 8);
        for v in 0..256u64 {
            let out = eval_comb(&n, &bits(v, 8));
            assert_eq!(to_u64(&out), golden_crc(CRC8, 8, v, 8), "v={v:#x}");
        }
    }

    #[test]
    fn crc16_spot_checks() {
        let n = crc_comb("crc16", CRC16_CCITT, 16, 12);
        for v in [0u64, 1, 0xABC, 0xFFF, 0x555] {
            let out = eval_comb(&n, &bits(v, 12));
            assert_eq!(to_u64(&out), golden_crc(CRC16_CCITT, 16, v, 12), "v={v:#x}");
        }
    }

    #[test]
    fn hamming_encode_exhaustive() {
        let n = hamming74_encode("h74e");
        for d in 0..16u64 {
            let out = eval_comb(&n, &bits(d, 4));
            assert_eq!(to_u64(&out), golden_hamming74_encode(d), "d={d}");
        }
    }

    #[test]
    fn hamming_roundtrip_clean() {
        let dec = hamming74_decode("h74d");
        for d in 0..16u64 {
            let cw = golden_hamming74_encode(d);
            let out = eval_comb(&dec, &bits(cw, 7));
            assert_eq!(to_u64(&out[..4]), d);
            assert!(!out[4], "clean codeword must not flag error");
        }
    }

    #[test]
    fn hamming_corrects_single_bit_errors() {
        let dec = hamming74_decode("h74d");
        for d in 0..16u64 {
            let cw = golden_hamming74_encode(d);
            for flip in 0..7 {
                let bad = cw ^ (1 << flip);
                let out = eval_comb(&dec, &bits(bad, 7));
                assert_eq!(to_u64(&out[..4]), d, "d={d} flip={flip}");
                assert!(out[4], "correction must be flagged");
            }
        }
    }

    #[test]
    fn gray_roundtrip_exhaustive() {
        let enc = gray_encode("ge", 6);
        let dec = gray_decode("gd", 6);
        for v in 0..64u64 {
            let g = to_u64(&eval_comb(&enc, &bits(v, 6)));
            assert_eq!(g, golden_gray_encode(v), "encode {v}");
            let back = to_u64(&eval_comb(&dec, &bits(g, 6)));
            assert_eq!(back, v, "roundtrip {v}");
        }
    }

    #[test]
    fn gray_adjacent_values_differ_in_one_bit() {
        let enc = gray_encode("ge", 5);
        for v in 0..31u64 {
            let g1 = to_u64(&eval_comb(&enc, &bits(v, 5)));
            let g2 = to_u64(&eval_comb(&enc, &bits(v + 1, 5)));
            assert_eq!((g1 ^ g2).count_ones(), 1, "v={v}");
        }
    }
}
