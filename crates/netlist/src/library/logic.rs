//! Combinational logic circuits: comparators, parity, popcount, encoders,
//! shifters, majority voters.

use super::util::{add_bus, mux_bus, resize_bus};
use crate::gate::NodeId;
use crate::graph::{Builder, Netlist};

/// `width`-bit unsigned comparator.
///
/// Inputs: `a[width]`, `b[width]`; outputs: `eq`, `lt` (a < b).
pub fn comparator(name: &str, width: usize) -> Netlist {
    assert!(width >= 1);
    let mut b = Builder::new(name);
    let xs = b.inputs(width);
    let ys = b.inputs(width);
    // MSB-first scan: lt = y_i & !x_i at the first differing bit.
    let mut eq_so_far = b.constant(true);
    let mut lt = b.constant(false);
    for i in (0..width).rev() {
        let xi = xs[i];
        let yi = ys[i];
        let nxi = b.not(xi);
        let here_lt = b.and(nxi, yi);
        let contrib = b.and(eq_so_far, here_lt);
        lt = b.or(lt, contrib);
        let here_eq = b.xnor(xi, yi);
        eq_so_far = b.and(eq_so_far, here_eq);
    }
    b.output("eq", eq_so_far);
    b.output("lt", lt);
    b.finish()
}

/// Golden model for [`comparator`].
pub fn golden_compare(a: u64, b: u64) -> (bool, bool) {
    (a == b, a < b)
}

/// `width`-input parity (XOR) tree. Output: `p`.
pub fn parity(name: &str, width: usize) -> Netlist {
    assert!(width >= 1);
    let mut b = Builder::new(name);
    let xs = b.inputs(width);
    let p = b.xor_tree(&xs);
    b.output("p", p);
    b.finish()
}

/// Golden model for [`parity`].
pub fn golden_parity(v: u64) -> bool {
    v.count_ones() % 2 == 1
}

/// `width`-input population count. Outputs: `c[ceil(log2(width+1))]`.
pub fn popcount(name: &str, width: usize) -> Netlist {
    assert!(width >= 1);
    let out_w = (usize::BITS - width.leading_zeros()) as usize;
    let mut b = Builder::new(name);
    let xs = b.inputs(width);
    // Adder-tree reduction of 1-bit values.
    let mut layer: Vec<Vec<NodeId>> = xs.iter().map(|&x| vec![x]).collect();
    let zero = b.constant(false);
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            if let Some(c) = it.next() {
                let w = a.len().max(c.len());
                let aw = resize_bus(&mut b, &a, w);
                let cw = resize_bus(&mut b, &c, w);
                let (mut s, cout) = add_bus(&mut b, &aw, &cw, zero);
                s.push(cout);
                next.push(s);
            } else {
                next.push(a);
            }
        }
        layer = next;
    }
    let count = resize_bus(&mut b, &layer[0], out_w);
    b.output_bus("c", &count);
    b.finish()
}

/// Golden model for [`popcount`].
pub fn golden_popcount(v: u64) -> u64 {
    v.count_ones() as u64
}

/// `width`-input priority encoder (highest-index set bit wins).
///
/// Outputs: `idx[ceil(log2 width)]`, `valid`.
pub fn priority_encoder(name: &str, width: usize) -> Netlist {
    assert!(width >= 2);
    let idx_w = (usize::BITS - (width - 1).leading_zeros()) as usize;
    let mut b = Builder::new(name);
    let xs = b.inputs(width);
    let mut idx = super::util::const_bus(&mut b, 0, idx_w);
    let mut valid = b.constant(false);
    // Scan LSB→MSB so higher indices override.
    for (i, &x) in xs.iter().enumerate() {
        let here = super::util::const_bus(&mut b, i as u64, idx_w);
        idx = mux_bus(&mut b, x, &idx, &here);
        valid = b.or(valid, x);
    }
    b.output_bus("idx", &idx);
    b.output("valid", valid);
    b.finish()
}

/// Golden model for [`priority_encoder`]: `(index, valid)`.
pub fn golden_priority(v: u64, width: usize) -> (u64, bool) {
    for i in (0..width).rev() {
        if (v >> i) & 1 == 1 {
            return (i as u64, true);
        }
    }
    (0, false)
}

/// `width`-bit barrel shifter (logical left).
///
/// Inputs: `a[width]`, `sh[log2 width]`; outputs: `y[width]`.
pub fn barrel_shifter(name: &str, width: usize) -> Netlist {
    assert!(width.is_power_of_two() && width >= 2);
    let sh_w = width.trailing_zeros() as usize;
    let mut b = Builder::new(name);
    let xs = b.inputs(width);
    let sh = b.inputs(sh_w);
    let mut cur = xs;
    for (stage, &s) in sh.iter().enumerate() {
        let shifted = super::util::shl_const(&mut b, &cur, 1 << stage);
        cur = mux_bus(&mut b, s, &cur, &shifted);
    }
    b.output_bus("y", &cur);
    b.finish()
}

/// Golden model for [`barrel_shifter`].
pub fn golden_shl(a: u64, sh: u64, width: usize) -> u64 {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    ((a & mask) << sh) & mask
}

/// Majority voter over `n` (odd) inputs — the classic fault-tolerance
/// primitive for the paper's "high-volume fault-tolerant memory storage"
/// scenario. Output: `m`.
pub fn majority(name: &str, n: usize) -> Netlist {
    assert!(n % 2 == 1 && n >= 3, "majority needs odd n >= 3");
    let mut b = Builder::new(name);
    let xs = b.inputs(n);
    // Count set bits with an adder tree, then threshold against n/2 + 1.
    let out_w = (usize::BITS - n.leading_zeros()) as usize;
    let zero = b.constant(false);
    let mut layer: Vec<Vec<NodeId>> = xs.iter().map(|&x| vec![x]).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            if let Some(c) = it.next() {
                let w = a.len().max(c.len());
                let aw = resize_bus(&mut b, &a, w);
                let cw = resize_bus(&mut b, &c, w);
                let (mut s, cout) = add_bus(&mut b, &aw, &cw, zero);
                s.push(cout);
                next.push(s);
            } else {
                next.push(a);
            }
        }
        layer = next;
    }
    let count = resize_bus(&mut b, &layer[0], out_w);
    // m = count > n/2  <=>  count >= n/2 + 1  <=>  !(count < n/2+1).
    let threshold = super::util::const_bus(&mut b, (n / 2 + 1) as u64, out_w);
    let (_, ge) = super::util::sub_bus(&mut b, &count, &threshold);
    b.output("m", ge);
    b.finish()
}

/// Golden model for [`majority`].
pub fn golden_majority(v: u64, n: usize) -> bool {
    (v & ((1 << n) - 1)).count_ones() as usize > n / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_comb;

    fn bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn to_u64(bs: &[bool]) -> u64 {
        bs.iter()
            .enumerate()
            .fold(0, |a, (i, &b)| a | ((b as u64) << i))
    }

    #[test]
    fn comparator_exhaustive() {
        let n = comparator("c4", 4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut inp = bits(a, 4);
                inp.extend(bits(b, 4));
                let out = eval_comb(&n, &inp);
                let (eq, lt) = golden_compare(a, b);
                assert_eq!(out[0], eq, "{a} eq {b}");
                assert_eq!(out[1], lt, "{a} lt {b}");
            }
        }
    }

    #[test]
    fn parity_exhaustive() {
        let n = parity("p6", 6);
        for v in 0..64u64 {
            assert_eq!(eval_comb(&n, &bits(v, 6))[0], golden_parity(v), "v={v}");
        }
    }

    #[test]
    fn popcount_exhaustive() {
        let n = popcount("pc7", 7);
        for v in 0..128u64 {
            let out = eval_comb(&n, &bits(v, 7));
            assert_eq!(to_u64(&out), golden_popcount(v), "v={v}");
        }
    }

    #[test]
    fn priority_encoder_exhaustive() {
        let n = priority_encoder("pe8", 8);
        for v in 0..256u64 {
            let out = eval_comb(&n, &bits(v, 8));
            let (idx, valid) = golden_priority(v, 8);
            assert_eq!(out[out.len() - 1], valid, "valid for {v:#b}");
            if valid {
                assert_eq!(to_u64(&out[..out.len() - 1]), idx, "idx for {v:#b}");
            }
        }
    }

    #[test]
    fn barrel_shifter_exhaustive() {
        let n = barrel_shifter("sh8", 8);
        for a in (0..256u64).step_by(7) {
            for sh in 0..8u64 {
                let mut inp = bits(a, 8);
                inp.extend(bits(sh, 3));
                let out = eval_comb(&n, &inp);
                assert_eq!(to_u64(&out), golden_shl(a, sh, 8), "{a} << {sh}");
            }
        }
    }

    #[test]
    fn majority_exhaustive() {
        let n = majority("m5", 5);
        for v in 0..32u64 {
            assert_eq!(
                eval_comb(&n, &bits(v, 5))[0],
                golden_majority(v, 5),
                "v={v:#b}"
            );
        }
    }
}
