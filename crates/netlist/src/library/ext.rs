//! Extended circuit collection: divider, Booth multiplier, bitonic sorting
//! network, seven-segment decoder, and BCD conversion.
//!
//! These round out the library's area/depth spectrum: the restoring
//! divider is the deepest circuit in the collection (quadratic depth), the
//! bitonic sorter the most wire-dense, the seven-segment decoder the most
//! LUT-friendly — useful stress shapes for the placer, router, and
//! partition experiments.

use super::util::{mux_bus, shl_const, sub_bus};
use crate::gate::NodeId;
use crate::graph::{Builder, Netlist};

/// `width`-bit unsigned restoring divider.
///
/// Inputs: `n[width]` (dividend), `d[width]` (divisor);
/// outputs: `q[width]`, `r[width]`. Division by zero yields q = all-ones,
/// r = n (the conventional garbage; golden model matches).
pub fn restoring_divider(name: &str, width: usize) -> Netlist {
    assert!((1..=16).contains(&width), "divider width 1..=16");
    let mut b = Builder::new(name);
    let n = b.inputs(width);
    let d = b.inputs(width);

    // Work in 2w bits: remainder register starts as zero-extended n and is
    // shifted left one bit per step; the divisor sits in the high half.
    let zero = b.constant(false);
    let mut rem: Vec<NodeId> = n.clone();
    rem.resize(2 * width, zero);
    let mut dd: Vec<NodeId> = vec![zero; width];
    dd.extend(d.iter().copied());

    let mut q: Vec<NodeId> = vec![zero; width];
    for step in 0..width {
        // rem <<= 1
        rem = shl_const(&mut b, &rem, 1);
        // trial = rem - dd
        let (trial, no_borrow) = sub_bus(&mut b, &rem, &dd);
        // if no_borrow: rem = trial, quotient bit = 1
        rem = mux_bus(&mut b, no_borrow, &rem, &trial);
        q[width - 1 - step] = no_borrow;
    }
    b.output_bus("q", &q);
    b.output_bus("r", &rem[width..2 * width]);
    b.finish()
}

/// Golden model for [`restoring_divider`]: `(quotient, remainder)`.
pub fn golden_divide(n: u64, d: u64, width: usize) -> (u64, u64) {
    let mask = (1u64 << width) - 1;
    let (n, d) = (n & mask, d & mask);
    if d == 0 {
        // Mirror the hardware: every trial subtraction "succeeds".
        return (mask, n);
    }
    (n / d, n % d)
}

/// `width × width` Booth-encoded (radix-2) signed multiplier.
///
/// Inputs: `a[width]`, `b[width]` (two's complement);
/// outputs: `p[2*width]`.
pub fn booth_multiplier(name: &str, width: usize) -> Netlist {
    assert!((2..=12).contains(&width), "booth width 2..=12");
    let mut bld = Builder::new(name);
    let a = bld.inputs(width);
    let b_in = bld.inputs(width);
    let zero = bld.constant(false);

    // Sign-extended A and -A in 2w bits.
    let mut a_ext: Vec<NodeId> = a.clone();
    while a_ext.len() < 2 * width {
        a_ext.push(a[width - 1]);
    }
    let zeros = vec![zero; 2 * width];
    let (neg_a, _) = sub_bus(&mut bld, &zeros, &a_ext);

    // Radix-2 Booth: examine (b[i], b[i-1]); 01 -> +A<<i, 10 -> -A<<i.
    let mut acc: Vec<NodeId> = vec![zero; 2 * width];
    let mut prev = zero;
    for (i, &bi) in b_in.iter().enumerate() {
        let nprev = bld.not(prev);
        let nbi = bld.not(bi);
        let plus = bld.and(nbi, prev); // 0,1 -> add
        let minus = bld.and(bi, nprev); // 1,0 -> subtract
        let pos = shl_const(&mut bld, &a_ext, i);
        let neg = shl_const(&mut bld, &neg_a, i);
        // operand = plus? pos : (minus? neg : 0)
        let sel_minus = mux_bus(&mut bld, minus, &zeros, &neg);
        let operand = mux_bus(&mut bld, plus, &sel_minus, &pos);
        let (next, _) = super::util::add_bus(&mut bld, &acc, &operand, zero);
        acc = next;
        prev = bi;
    }
    bld.output_bus("p", &acc);
    bld.finish()
}

/// Golden model for [`booth_multiplier`]: signed product, 2w bits.
pub fn golden_booth(a: u64, b: u64, width: usize) -> u64 {
    let sign_extend = |v: u64| -> i64 {
        let m = 1u64 << (width - 1);
        ((v & ((1 << width) - 1)) as i64 ^ m as i64) - m as i64
    };
    let p = sign_extend(a).wrapping_mul(sign_extend(b));
    (p as u64) & ((1u64 << (2 * width)) - 1)
}

/// Bitonic sorting network over `n` (power of two) `width`-bit keys.
///
/// Inputs: `x0[width]`, `x1[width]`, …; outputs: `y0[width]` ≤ `y1[width]` ≤ ….
pub fn bitonic_sorter(name: &str, n: usize, width: usize) -> Netlist {
    assert!(
        n.is_power_of_two() && n >= 2,
        "n must be a power of two >= 2"
    );
    let mut b = Builder::new(name);
    let mut lanes: Vec<Vec<NodeId>> = (0..n).map(|_| b.inputs(width)).collect();

    // Compare-exchange: ascending puts min on `lo`.
    let cmpex = |b: &mut Builder, lanes: &mut Vec<Vec<NodeId>>, lo: usize, hi: usize, asc: bool| {
        let (_, ge) = sub_bus(b, &lanes[lo], &lanes[hi]); // ge = lanes[lo] >= lanes[hi]
        let swap = if asc { ge } else { b.not(ge) };
        let new_lo = mux_bus(b, swap, &lanes[lo], &lanes[hi]);
        let new_hi = mux_bus(b, swap, &lanes[hi], &lanes[lo]);
        lanes[lo] = new_lo;
        lanes[hi] = new_hi;
    };

    // Standard bitonic network.
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    let asc = (i & k) == 0;
                    cmpex(&mut b, &mut lanes, i, l, asc);
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    for (i, lane) in lanes.iter().enumerate() {
        b.output_bus(&format!("y{i}"), lane);
    }
    b.finish()
}

/// Golden model for [`bitonic_sorter`]: sort ascending.
pub fn golden_sort(xs: &[u64], width: usize) -> Vec<u64> {
    let mask = (1u64 << width) - 1;
    let mut v: Vec<u64> = xs.iter().map(|&x| x & mask).collect();
    v.sort_unstable();
    v
}

/// Seven-segment decoder for one hex digit.
///
/// Inputs: `d[4]`; outputs: `seg[7]` (a..g active-high, standard layout).
pub fn seven_segment(name: &str) -> Netlist {
    let mut b = Builder::new(name);
    let d = b.inputs(4);
    let mut segs: Vec<NodeId> = Vec::with_capacity(7);
    for seg in 0..7 {
        // Build each segment as a sum of minterms from the golden table.
        let mut terms = Vec::new();
        for v in 0..16u64 {
            if (golden_seven_segment(v) >> seg) & 1 == 1 {
                let mut bits = Vec::with_capacity(4);
                for (i, &di) in d.iter().enumerate() {
                    bits.push(if (v >> i) & 1 == 1 { di } else { b.not(di) });
                }
                terms.push(b.and_tree(&bits));
            }
        }
        segs.push(b.or_tree(&terms));
    }
    b.output_bus("seg", &segs);
    b.finish()
}

/// Golden model for [`seven_segment`]: segment mask a..g for a hex digit.
pub fn golden_seven_segment(v: u64) -> u64 {
    // Standard common-cathode hex patterns, bit0 = a … bit6 = g.
    const TABLE: [u64; 16] = [
        0b0111111, 0b0000110, 0b1011011, 0b1001111, 0b1100110, 0b1101101, 0b1111101, 0b0000111,
        0b1111111, 0b1101111, 0b1110111, 0b1111100, 0b0111001, 0b1011110, 0b1111001, 0b1110001,
    ];
    TABLE[(v & 0xF) as usize]
}

/// Binary→BCD (double-dabble) converter for values 0..100.
///
/// Inputs: `x[7]`; outputs: `tens[4]`, `ones[4]`.
pub fn bin_to_bcd(name: &str) -> Netlist {
    let mut b = Builder::new(name);
    let x = b.inputs(7);
    let zero = b.constant(false);
    // Shift-and-add-3, unrolled: scratch = [ones(4) | tens(4)].
    let mut ones: Vec<NodeId> = vec![zero; 4];
    let mut tens: Vec<NodeId> = vec![zero; 4];
    for i in (0..7).rev() {
        // Add 3 to any BCD digit >= 5 before shifting.
        for digit in [&mut ones, &mut tens] {
            let five = super::util::const_bus(&mut b, 5, 4);
            let (_, ge5) = sub_bus(&mut b, digit, &five);
            let three = super::util::const_bus(&mut b, 3, 4);
            let (plus3, _) = super::util::add_bus(&mut b, digit, &three, zero);
            let next = mux_bus(&mut b, ge5, digit, &plus3);
            digit.clone_from(&next);
        }
        // Shift left, feeding x[i] into ones[0] and ones[3] into tens[0].
        let ones_msb = ones[3];
        ones = vec![x[i], ones[0], ones[1], ones[2]];
        tens = vec![ones_msb, tens[0], tens[1], tens[2]];
    }
    b.output_bus("ones", &ones);
    b.output_bus("tens", &tens);
    b.finish()
}

/// Golden model for [`bin_to_bcd`]: `(tens, ones)` for 0..100.
pub fn golden_bcd(v: u64) -> (u64, u64) {
    let v = v % 100;
    (v / 10, v % 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_comb;

    fn bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn to_u64(bs: &[bool]) -> u64 {
        bs.iter()
            .enumerate()
            .fold(0, |a, (i, &b)| a | ((b as u64) << i))
    }

    #[test]
    fn divider_exhaustive_4bit() {
        let net = restoring_divider("div4", 4);
        for n in 0..16u64 {
            for d in 0..16u64 {
                let mut inp = bits(n, 4);
                inp.extend(bits(d, 4));
                let out = eval_comb(&net, &inp);
                let (q, r) = golden_divide(n, d, 4);
                assert_eq!(to_u64(&out[..4]), q, "{n}/{d} quotient");
                assert_eq!(to_u64(&out[4..]), r, "{n}/{d} remainder");
            }
        }
    }

    #[test]
    fn divider_spot_checks_6bit() {
        let net = restoring_divider("div6", 6);
        for (n, d) in [(63u64, 7u64), (42, 5), (1, 63), (60, 1), (0, 9)] {
            let mut inp = bits(n, 6);
            inp.extend(bits(d, 6));
            let out = eval_comb(&net, &inp);
            let (q, r) = golden_divide(n, d, 6);
            assert_eq!(to_u64(&out[..6]), q, "{n}/{d}");
            assert_eq!(to_u64(&out[6..]), r, "{n}%{d}");
        }
    }

    #[test]
    fn booth_exhaustive_4bit_signed() {
        let net = booth_multiplier("bm4", 4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut inp = bits(a, 4);
                inp.extend(bits(b, 4));
                let out = eval_comb(&net, &inp);
                assert_eq!(to_u64(&out), golden_booth(a, b, 4), "{a}*{b} signed");
            }
        }
    }

    #[test]
    fn bitonic_sorts_4x3_exhaustively_sampled() {
        let net = bitonic_sorter("bs4", 4, 3);
        for seed in 0..200u64 {
            // Derive 4 pseudo-random 3-bit keys from the seed.
            let keys: Vec<u64> = (0..4).map(|i| (seed * 7 + i * 13) % 8).collect();
            let mut inp = Vec::new();
            for &k in &keys {
                inp.extend(bits(k, 3));
            }
            let out = eval_comb(&net, &inp);
            let got: Vec<u64> = (0..4).map(|i| to_u64(&out[i * 3..(i + 1) * 3])).collect();
            assert_eq!(got, golden_sort(&keys, 3), "keys {keys:?}");
        }
    }

    #[test]
    fn bitonic_8_lane_smoke() {
        let net = bitonic_sorter("bs8", 8, 4);
        let keys = [9u64, 3, 15, 0, 7, 7, 12, 1];
        let mut inp = Vec::new();
        for &k in &keys {
            inp.extend(bits(k, 4));
        }
        let out = eval_comb(&net, &inp);
        let got: Vec<u64> = (0..8).map(|i| to_u64(&out[i * 4..(i + 1) * 4])).collect();
        assert_eq!(got, golden_sort(&keys, 4));
    }

    #[test]
    fn seven_segment_all_digits() {
        let net = seven_segment("sseg");
        for v in 0..16u64 {
            let out = eval_comb(&net, &bits(v, 4));
            assert_eq!(to_u64(&out), golden_seven_segment(v), "digit {v:x}");
        }
    }

    #[test]
    fn bcd_all_values() {
        let net = bin_to_bcd("bcd");
        for v in 0..100u64 {
            let out = eval_comb(&net, &bits(v, 7));
            let (tens, ones) = golden_bcd(v);
            assert_eq!(to_u64(&out[..4]), ones, "{v} ones");
            assert_eq!(to_u64(&out[4..]), tens, "{v} tens");
        }
    }

    #[test]
    fn extended_circuits_survive_the_mapper() {
        for net in [
            restoring_divider("d", 4),
            booth_multiplier("b", 4),
            bitonic_sorter("s", 4, 3),
            seven_segment("7"),
            bin_to_bcd("bcd"),
        ] {
            let mapped = crate::map_to_luts(&net, crate::MapOptions::default());
            assert_eq!(mapped.validate(), Ok(()));
            // Spot-check functional equivalence on 64 random vectors.
            let mut words = Vec::new();
            let mut x = 0x1234_5678_9ABC_DEF0u64;
            for _ in 0..net.num_inputs() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                words.push(x);
            }
            let mut gsim = crate::Simulator::new(&net);
            gsim.eval(&words);
            let mut lsim = crate::lutnet::LutSimulator::new(&mapped);
            lsim.eval(&words);
            assert_eq!(gsim.outputs(), lsim.outputs(&words), "{}", net.name());
        }
    }
}
