//! Bus-level construction helpers.
//!
//! All circuit generators manipulate *buses*: LSB-first vectors of
//! [`NodeId`]. These free functions extend [`Builder`] with the word-level
//! operators the generators need; they are deliberately structural (ripple
//! carries, mux trees) so that circuit area scales the way real FPGA
//! datapaths do.

use crate::gate::NodeId;
use crate::graph::Builder;

/// A constant bus holding `value`, LSB-first, `width` bits.
pub fn const_bus(b: &mut Builder, value: u64, width: usize) -> Vec<NodeId> {
    (0..width)
        .map(|i| b.constant((value >> i) & 1 == 1))
        .collect()
}

/// Bitwise NOT of a bus.
pub fn not_bus(b: &mut Builder, xs: &[NodeId]) -> Vec<NodeId> {
    xs.iter().map(|&x| b.not(x)).collect()
}

/// Bitwise AND of two equal-width buses.
pub fn and_bus(b: &mut Builder, xs: &[NodeId], ys: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(xs.len(), ys.len());
    xs.iter().zip(ys).map(|(&x, &y)| b.and(x, y)).collect()
}

/// Bitwise XOR of two equal-width buses.
pub fn xor_bus(b: &mut Builder, xs: &[NodeId], ys: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(xs.len(), ys.len());
    xs.iter().zip(ys).map(|(&x, &y)| b.xor(x, y)).collect()
}

/// Bus-wide 2:1 mux: `sel ? hi : lo`, element-wise.
pub fn mux_bus(b: &mut Builder, sel: NodeId, lo: &[NodeId], hi: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(lo.len(), hi.len());
    lo.iter().zip(hi).map(|(&l, &h)| b.mux(sel, l, h)).collect()
}

/// Full adder: returns `(sum, carry_out)`.
pub fn full_adder(b: &mut Builder, x: NodeId, y: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let s1 = b.xor(x, y);
    let sum = b.xor(s1, cin);
    let c1 = b.and(x, y);
    let c2 = b.and(s1, cin);
    let cout = b.or(c1, c2);
    (sum, cout)
}

/// Ripple-carry addition of two equal-width buses; returns `(sum, carry_out)`.
pub fn add_bus(
    b: &mut Builder,
    xs: &[NodeId],
    ys: &[NodeId],
    cin: NodeId,
) -> (Vec<NodeId>, NodeId) {
    assert_eq!(xs.len(), ys.len());
    let mut carry = cin;
    let mut sum = Vec::with_capacity(xs.len());
    for (&x, &y) in xs.iter().zip(ys) {
        let (s, c) = full_adder(b, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Two's-complement subtraction `xs - ys`; returns `(difference, borrow_free)`
/// where the second element is the carry-out (1 means no borrow, i.e.
/// `xs >= ys` for unsigned operands).
pub fn sub_bus(b: &mut Builder, xs: &[NodeId], ys: &[NodeId]) -> (Vec<NodeId>, NodeId) {
    let ny = not_bus(b, ys);
    let one = b.constant(true);
    add_bus(b, xs, &ny, one)
}

/// Increment a bus by an enable bit; returns `(result, carry_out)`.
pub fn inc_bus(b: &mut Builder, xs: &[NodeId], en: NodeId) -> (Vec<NodeId>, NodeId) {
    let mut carry = en;
    let mut out = Vec::with_capacity(xs.len());
    for &x in xs {
        let s = b.xor(x, carry);
        let c = b.and(x, carry);
        out.push(s);
        carry = c;
    }
    (out, carry)
}

/// Equality of two equal-width buses.
pub fn eq_bus(b: &mut Builder, xs: &[NodeId], ys: &[NodeId]) -> NodeId {
    assert_eq!(xs.len(), ys.len());
    let eqs: Vec<NodeId> = xs.iter().zip(ys).map(|(&x, &y)| b.xnor(x, y)).collect();
    b.and_tree(&eqs)
}

/// Zero-extend (or truncate) a bus to `width` bits.
pub fn resize_bus(b: &mut Builder, xs: &[NodeId], width: usize) -> Vec<NodeId> {
    let zero = b.constant(false);
    let mut out: Vec<NodeId> = xs.iter().copied().take(width).collect();
    while out.len() < width {
        out.push(zero);
    }
    out
}

/// Logical left shift by a constant amount (zero-filled), keeping width.
pub fn shl_const(b: &mut Builder, xs: &[NodeId], by: usize) -> Vec<NodeId> {
    let zero = b.constant(false);
    let mut out = vec![zero; by.min(xs.len())];
    out.extend(xs.iter().copied().take(xs.len().saturating_sub(by)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_comb;

    fn bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn to_u64(bs: &[bool]) -> u64 {
        bs.iter()
            .enumerate()
            .fold(0, |a, (i, &b)| a | ((b as u64) << i))
    }

    #[test]
    fn add_bus_matches_integer_addition() {
        let w = 5;
        let mut b = Builder::new("add");
        let xs = b.inputs(w);
        let ys = b.inputs(w);
        let zero = b.constant(false);
        let (sum, cout) = add_bus(&mut b, &xs, &ys, zero);
        b.output_bus("s", &sum);
        b.output("c", cout);
        let n = b.finish();
        for x in 0..(1u64 << w) {
            for y in (0..(1u64 << w)).step_by(3) {
                let mut inp = bits(x, w);
                inp.extend(bits(y, w));
                let out = eval_comb(&n, &inp);
                let got = to_u64(&out[..w]) | ((out[w] as u64) << w);
                assert_eq!(got, x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn sub_bus_matches_wrapping_subtraction() {
        let w = 4;
        let mut b = Builder::new("sub");
        let xs = b.inputs(w);
        let ys = b.inputs(w);
        let (diff, nb) = sub_bus(&mut b, &xs, &ys);
        b.output_bus("d", &diff);
        b.output("nb", nb);
        let n = b.finish();
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut inp = bits(x, w);
                inp.extend(bits(y, w));
                let out = eval_comb(&n, &inp);
                assert_eq!(to_u64(&out[..w]), x.wrapping_sub(y) & 0xF, "{x}-{y}");
                assert_eq!(out[w], x >= y, "borrow for {x}-{y}");
            }
        }
    }

    #[test]
    fn inc_and_eq() {
        let w = 4;
        let mut b = Builder::new("inc");
        let xs = b.inputs(w);
        let en = b.input();
        let (inc, _) = inc_bus(&mut b, &xs, en);
        let three = const_bus(&mut b, 3, w);
        let is3 = eq_bus(&mut b, &xs, &three);
        b.output_bus("i", &inc);
        b.output("is3", is3);
        let n = b.finish();
        for x in 0..16u64 {
            for e in [0u64, 1] {
                let mut inp = bits(x, w);
                inp.push(e == 1);
                let out = eval_comb(&n, &inp);
                assert_eq!(to_u64(&out[..w]), (x + e) & 0xF);
                assert_eq!(out[w], x == 3);
            }
        }
    }

    #[test]
    fn mux_and_shift() {
        let w = 4;
        let mut b = Builder::new("ms");
        let xs = b.inputs(w);
        let ys = b.inputs(w);
        let sel = b.input();
        let m = mux_bus(&mut b, sel, &xs, &ys);
        let sh = shl_const(&mut b, &xs, 2);
        b.output_bus("m", &m);
        b.output_bus("sh", &sh);
        let n = b.finish();
        for x in 0..16u64 {
            let y = 0b1010;
            for s in [false, true] {
                let mut inp = bits(x, w);
                inp.extend(bits(y, w));
                inp.push(s);
                let out = eval_comb(&n, &inp);
                assert_eq!(to_u64(&out[..w]), if s { y } else { x });
                assert_eq!(to_u64(&out[w..]), (x << 2) & 0xF);
            }
        }
    }

    #[test]
    fn resize_extends_and_truncates() {
        let mut b = Builder::new("rz");
        let xs = b.inputs(3);
        let wide = resize_bus(&mut b, &xs, 5);
        let narrow = resize_bus(&mut b, &xs, 2);
        b.output_bus("w", &wide);
        b.output_bus("n", &narrow);
        let n = b.finish();
        let out = eval_comb(&n, &bits(0b101, 3));
        assert_eq!(to_u64(&out[..5]), 0b101);
        assert_eq!(to_u64(&out[5..]), 0b01);
    }
}
