//! A small multi-function ALU — the paper's "merge all circuits into only
//! one" baseline made concrete: one circuit implementing several functions
//! selected by an opcode, each task using only the outputs it cares about.

use super::util::{add_bus, and_bus, mux_bus, sub_bus, xor_bus};
use crate::graph::{Builder, Netlist};

/// ALU operations, encoded in a 3-bit opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// `a + b` (wrapping).
    Add = 0,
    /// `a - b` (wrapping).
    Sub = 1,
    /// Bitwise AND.
    And = 2,
    /// Bitwise OR.
    Or = 3,
    /// Bitwise XOR.
    Xor = 4,
    /// Set-less-than: 1 if `a < b` (unsigned), else 0.
    Slt = 5,
}

/// `width`-bit ALU.
///
/// Inputs: `a[width]`, `b[width]`, `op[3]`; outputs: `y[width]`, `zero`.
pub fn alu(name: &str, width: usize) -> Netlist {
    assert!(width >= 2);
    let mut b = Builder::new(name);
    let xs = b.inputs(width);
    let ys = b.inputs(width);
    let op = b.inputs(3);
    let zero_c = b.constant(false);

    let (add, _) = add_bus(&mut b, &xs, &ys, zero_c);
    let (sub, ge) = sub_bus(&mut b, &xs, &ys);
    let andv = and_bus(&mut b, &xs, &ys);
    let orv: Vec<_> = xs.iter().zip(&ys).map(|(&x, &y)| b.or(x, y)).collect();
    let xorv = xor_bus(&mut b, &xs, &ys);
    let lt = b.not(ge);
    let mut slt = vec![zero_c; width];
    slt[0] = lt;

    // 8:1 selection via a mux tree on the opcode bits.
    let m0a = mux_bus(&mut b, op[0], &add, &sub); // op 0/1
    let m0b = mux_bus(&mut b, op[0], &andv, &orv); // op 2/3
    let m0c = mux_bus(&mut b, op[0], &xorv, &slt); // op 4/5
    let m0d = m0c.clone(); // ops 6/7 mirror 4/5 (don't care)
    let m1a = mux_bus(&mut b, op[1], &m0a, &m0b);
    let m1b = mux_bus(&mut b, op[1], &m0c, &m0d);
    let y = mux_bus(&mut b, op[2], &m1a, &m1b);

    let ny: Vec<_> = y.iter().map(|&v| b.not(v)).collect();
    let z = b.and_tree(&ny);
    b.output_bus("y", &y);
    b.output("zero", z);
    b.finish()
}

/// Golden model for [`alu`]: `(y, zero)`.
pub fn golden_alu(op: AluOp, a: u64, b: u64, width: usize) -> (u64, bool) {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    let a = a & mask;
    let b = b & mask;
    let y = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Slt => (a < b) as u64,
    } & mask;
    (y, y == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_comb;

    fn bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn to_u64(bs: &[bool]) -> u64 {
        bs.iter()
            .enumerate()
            .fold(0, |a, (i, &b)| a | ((b as u64) << i))
    }

    #[test]
    fn all_ops_match_golden() {
        let w = 4;
        let n = alu("alu4", w);
        let ops = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Slt,
        ];
        for &op in &ops {
            for a in 0..16u64 {
                for b in (0..16u64).step_by(3) {
                    let mut inp = bits(a, w);
                    inp.extend(bits(b, w));
                    inp.extend(bits(op as u64, 3));
                    let out = eval_comb(&n, &inp);
                    let (y, z) = golden_alu(op, a, b, w);
                    assert_eq!(to_u64(&out[..w]), y, "{op:?} {a},{b}");
                    assert_eq!(out[w], z, "zero flag {op:?} {a},{b}");
                }
            }
        }
    }

    #[test]
    fn alu_is_bigger_than_single_op() {
        // The merged circuit costs more area than any single function —
        // the quantitative core of experiment E3.
        let alu_gates = alu("alu8", 8).stats().gates;
        let add_gates = super::super::arith::ripple_adder("a8", 8).stats().gates;
        assert!(alu_gates > 2 * add_gates);
    }
}
