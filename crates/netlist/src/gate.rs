//! Gate primitives.
//!
//! The netlist IR uses a deliberately small cell library: 2-input logic
//! gates, an inverter, a 2:1 mux, constants, primary inputs, and a D
//! flip-flop. Everything the circuit library builds reduces to these, and
//! the LUT mapper absorbs them into K-input LUTs anyway, so a richer cell
//! library would only add surface area.

use std::fmt;

/// Index of a node within its [`crate::Netlist`].
///
/// `u32` keeps the node table compact; netlists in this project stay far
/// below 2^32 nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position in the netlist node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One netlist node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Primary input number `bit`.
    Input { bit: u32 },
    /// Constant 0 or 1.
    Const(bool),
    /// Inverter.
    Not(NodeId),
    /// 2-input AND.
    And(NodeId, NodeId),
    /// 2-input OR.
    Or(NodeId, NodeId),
    /// 2-input XOR.
    Xor(NodeId, NodeId),
    /// 2-input NAND.
    Nand(NodeId, NodeId),
    /// 2-input NOR.
    Nor(NodeId, NodeId),
    /// 2-input XNOR.
    Xnor(NodeId, NodeId),
    /// 2:1 multiplexer: output = if sel { hi } else { lo }.
    Mux {
        /// Select line.
        sel: NodeId,
        /// Output when `sel` is 0.
        lo: NodeId,
        /// Output when `sel` is 1.
        hi: NodeId,
    },
    /// D flip-flop: output is the registered value; `d` is sampled on each
    /// clock step; `init` is the power-up value. A flip-flop output is a
    /// *sequential* source: it breaks combinational cycles.
    Dff {
        /// Data input.
        d: NodeId,
        /// Power-up value.
        init: bool,
    },
}

impl Gate {
    /// Combinational fan-in of this node (flip-flops report none: their
    /// `d` input is a *sequential* edge, not part of the combinational DAG).
    pub fn comb_fanin(&self) -> GateFanin {
        match *self {
            Gate::Input { .. } | Gate::Const(_) | Gate::Dff { .. } => GateFanin::None,
            Gate::Not(a) => GateFanin::One(a),
            Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Xor(a, b)
            | Gate::Nand(a, b)
            | Gate::Nor(a, b)
            | Gate::Xnor(a, b) => GateFanin::Two(a, b),
            Gate::Mux { sel, lo, hi } => GateFanin::Three(sel, lo, hi),
        }
    }

    /// Whether this node is a flip-flop.
    pub fn is_dff(&self) -> bool {
        matches!(self, Gate::Dff { .. })
    }

    /// Whether this node is a primary input.
    pub fn is_input(&self) -> bool {
        matches!(self, Gate::Input { .. })
    }

    /// Short mnemonic for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Gate::Input { .. } => "input",
            Gate::Const(_) => "const",
            Gate::Not(_) => "not",
            Gate::And(..) => "and",
            Gate::Or(..) => "or",
            Gate::Xor(..) => "xor",
            Gate::Nand(..) => "nand",
            Gate::Nor(..) => "nor",
            Gate::Xnor(..) => "xnor",
            Gate::Mux { .. } => "mux",
            Gate::Dff { .. } => "dff",
        }
    }
}

/// Combinational fan-in of a gate, by arity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateFanin {
    /// No combinational inputs (primary input, constant, flip-flop output).
    None,
    /// One input.
    One(NodeId),
    /// Two inputs.
    Two(NodeId, NodeId),
    /// Three inputs (mux).
    Three(NodeId, NodeId, NodeId),
}

impl GateFanin {
    /// Iterate over the fan-in node ids.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        let (a, b, c) = match self {
            GateFanin::None => (None, None, None),
            GateFanin::One(a) => (Some(a), None, None),
            GateFanin::Two(a, b) => (Some(a), Some(b), None),
            GateFanin::Three(a, b, c) => (Some(a), Some(b), Some(c)),
        };
        a.into_iter().chain(b).chain(c)
    }

    /// Number of fan-in nodes.
    pub fn len(self) -> usize {
        match self {
            GateFanin::None => 0,
            GateFanin::One(_) => 1,
            GateFanin::Two(..) => 2,
            GateFanin::Three(..) => 3,
        }
    }

    /// Whether there is no combinational fan-in.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanin_arities() {
        let a = NodeId(0);
        let b = NodeId(1);
        let c = NodeId(2);
        assert_eq!(Gate::Input { bit: 0 }.comb_fanin().len(), 0);
        assert_eq!(Gate::Const(true).comb_fanin().len(), 0);
        assert_eq!(Gate::Dff { d: a, init: false }.comb_fanin().len(), 0);
        assert_eq!(Gate::Not(a).comb_fanin().len(), 1);
        assert_eq!(Gate::And(a, b).comb_fanin().len(), 2);
        assert_eq!(
            Gate::Mux {
                sel: a,
                lo: b,
                hi: c
            }
            .comb_fanin()
            .len(),
            3
        );
    }

    #[test]
    fn fanin_iter_yields_in_order() {
        let f = GateFanin::Three(NodeId(5), NodeId(6), NodeId(7));
        let v: Vec<_> = f.iter().collect();
        assert_eq!(v, vec![NodeId(5), NodeId(6), NodeId(7)]);
    }

    #[test]
    fn kind_strings() {
        assert_eq!(Gate::Xor(NodeId(0), NodeId(1)).kind(), "xor");
        assert_eq!(
            Gate::Dff {
                d: NodeId(0),
                init: true
            }
            .kind(),
            "dff"
        );
    }

    #[test]
    fn display_node_id() {
        assert_eq!(NodeId(12).to_string(), "n12");
    }
}
