//! LUT-level netlists: the mapper's output and the placer's input.
//!
//! A [`LutNetwork`] is the technology-mapped form of a [`crate::Netlist`]:
//! K-input lookup tables plus D flip-flops. This is the granularity at
//! which the FPGA fabric is configured — one LUT (optionally paired with
//! one flip-flop) per configurable logic block — so partition sizes, page
//! counts, and configuration-frame footprints are all derived from it.

use crate::truth::table_eval;

/// A signal source inside a LUT network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LutIn {
    /// Primary input number.
    Input(u32),
    /// Output of LUT number.
    Lut(u32),
    /// Output of flip-flop number.
    Ff(u32),
    /// Constant signal.
    Const(bool),
}

/// One K-input lookup table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lut {
    /// Input connections, LSB-first w.r.t. the truth table index.
    pub inputs: Vec<LutIn>,
    /// Truth table over `inputs` (bit `m` = output for minterm `m`).
    pub table: u64,
}

/// One D flip-flop in the mapped network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipFlop {
    /// Data input.
    pub d: LutIn,
    /// Power-up value.
    pub init: bool,
}

/// A technology-mapped circuit.
///
/// LUTs are stored in topological order: a LUT may only reference LUTs
/// with smaller indices (flip-flop outputs and primary inputs may be
/// referenced freely). This is checked by [`LutNetwork::validate`].
#[derive(Debug, Clone)]
pub struct LutNetwork {
    /// Circuit name (propagated from the gate netlist).
    pub name: String,
    /// LUT input arity limit the network was mapped for.
    pub k: usize,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Lookup tables in topological order.
    pub luts: Vec<Lut>,
    /// Flip-flops.
    pub ffs: Vec<FlipFlop>,
    /// Primary outputs as `(name, source)`.
    pub outputs: Vec<(String, LutIn)>,
}

impl LutNetwork {
    /// Number of logic blocks this network occupies on the fabric: each
    /// LUT costs one block; a flip-flop is *packed* into the block of the
    /// LUT that drives it when it is that LUT's only fanout destination,
    /// otherwise it occupies a block of its own (as a route-through).
    pub fn block_count(&self) -> usize {
        self.luts.len() + self.unpacked_ff_count()
    }

    /// Flip-flops that cannot share a block with their driving LUT.
    pub fn unpacked_ff_count(&self) -> usize {
        self.ffs
            .iter()
            .filter(|ff| !matches!(ff.d, LutIn::Lut(_)))
            .count()
    }

    /// Longest LUT-level combinational path (LUT levels).
    pub fn depth(&self) -> usize {
        let mut lvl = vec![0usize; self.luts.len()];
        for (i, lut) in self.luts.iter().enumerate() {
            let mut m = 0;
            for inp in &lut.inputs {
                if let LutIn::Lut(j) = *inp {
                    m = m.max(lvl[j as usize]);
                }
            }
            lvl[i] = m + 1;
        }
        lvl.into_iter().max().unwrap_or(0)
    }

    /// Total pins used by the network's external interface (inputs +
    /// outputs) — the quantity the paper's I/O-multiplexing technique
    /// virtualizes.
    pub fn io_count(&self) -> usize {
        self.num_inputs + self.outputs.len()
    }

    /// Structural validation: topological LUT order, in-range references,
    /// arity ≤ K, truth tables within mask.
    pub fn validate(&self) -> Result<(), String> {
        for (i, lut) in self.luts.iter().enumerate() {
            if lut.inputs.len() > self.k {
                return Err(format!(
                    "LUT {i} has {} inputs > K={}",
                    lut.inputs.len(),
                    self.k
                ));
            }
            let mask = crate::truth::table_mask(lut.inputs.len());
            if lut.table & !mask != 0 {
                return Err(format!("LUT {i} table has bits outside its arity mask"));
            }
            for inp in &lut.inputs {
                match *inp {
                    LutIn::Lut(j) if j as usize >= i => {
                        return Err(format!("LUT {i} references LUT {j}: not topological"));
                    }
                    LutIn::Input(b) if b as usize >= self.num_inputs => {
                        return Err(format!("LUT {i} references missing input {b}"));
                    }
                    LutIn::Ff(f) if f as usize >= self.ffs.len() => {
                        return Err(format!("LUT {i} references missing FF {f}"));
                    }
                    _ => {}
                }
            }
        }
        for (i, ff) in self.ffs.iter().enumerate() {
            match ff.d {
                LutIn::Lut(j) if j as usize >= self.luts.len() => {
                    return Err(format!("FF {i} d references missing LUT {j}"));
                }
                LutIn::Input(b) if b as usize >= self.num_inputs => {
                    return Err(format!("FF {i} d references missing input {b}"));
                }
                LutIn::Ff(f) if f as usize >= self.ffs.len() => {
                    return Err(format!("FF {i} d references missing FF {f}"));
                }
                _ => {}
            }
        }
        for (name, src) in &self.outputs {
            match *src {
                LutIn::Lut(j) if j as usize >= self.luts.len() => {
                    return Err(format!("output '{name}' references missing LUT {j}"));
                }
                LutIn::Input(b) if b as usize >= self.num_inputs => {
                    return Err(format!("output '{name}' references missing input {b}"));
                }
                LutIn::Ff(f) if f as usize >= self.ffs.len() => {
                    return Err(format!("output '{name}' references missing FF {f}"));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Bit-parallel simulator for a [`LutNetwork`] — the reference model used
/// to prove mapping preserved the circuit's function, and the execution
/// model the FPGA fabric uses once the network is configured.
#[derive(Debug, Clone)]
pub struct LutSimulator<'a> {
    net: &'a LutNetwork,
    lut_vals: Vec<u64>,
    ff_state: Vec<u64>,
}

impl<'a> LutSimulator<'a> {
    /// New simulator with flip-flops at power-up values.
    pub fn new(net: &'a LutNetwork) -> Self {
        LutSimulator {
            lut_vals: vec![0; net.luts.len()],
            ff_state: net
                .ffs
                .iter()
                .map(|ff| if ff.init { u64::MAX } else { 0 })
                .collect(),
            net,
        }
    }

    fn source(&self, s: LutIn, inputs: &[u64]) -> u64 {
        match s {
            LutIn::Input(b) => inputs[b as usize],
            LutIn::Lut(j) => self.lut_vals[j as usize],
            LutIn::Ff(f) => self.ff_state[f as usize],
            LutIn::Const(c) => {
                if c {
                    u64::MAX
                } else {
                    0
                }
            }
        }
    }

    /// Evaluate all LUTs for the given input words.
    pub fn eval(&mut self, inputs: &[u64]) {
        assert_eq!(inputs.len(), self.net.num_inputs, "input width mismatch");
        for i in 0..self.net.luts.len() {
            let lut = &self.net.luts[i];
            // Evaluate the truth table lane-wise: build the minterm index
            // per lane by scanning input bits.
            let mut out = 0u64;
            let in_words: Vec<u64> = lut.inputs.iter().map(|&s| self.source(s, inputs)).collect();
            for lane in 0..64 {
                let mut idx = 0usize;
                for (b, w) in in_words.iter().enumerate() {
                    idx |= (((w >> lane) & 1) as usize) << b;
                }
                out |= ((lut.table >> idx) & 1) << lane;
            }
            self.lut_vals[i] = out;
        }
    }

    /// Latch all flip-flops.
    pub fn clock(&mut self, inputs: &[u64]) {
        let next: Vec<u64> = self
            .net
            .ffs
            .iter()
            .map(|ff| self.source(ff.d, inputs))
            .collect();
        self.ff_state = next;
    }

    /// One full synchronous cycle.
    pub fn step(&mut self, inputs: &[u64]) {
        self.eval(inputs);
        self.clock(inputs);
    }

    /// Current output words in declaration order.
    pub fn outputs(&self, inputs: &[u64]) -> Vec<u64> {
        self.net
            .outputs
            .iter()
            .map(|(_, s)| self.source(*s, inputs))
            .collect()
    }

    /// Readback of all flip-flop words.
    pub fn read_state(&self) -> Vec<u64> {
        self.ff_state.clone()
    }

    /// Overwrite all flip-flop words.
    pub fn load_state(&mut self, state: &[u64]) {
        assert_eq!(state.len(), self.ff_state.len(), "state width mismatch");
        self.ff_state.copy_from_slice(state);
    }
}

/// Scalar single-assignment evaluation helper (lane 0 only).
pub fn lut_eval_comb(net: &LutNetwork, inputs: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
    let mut sim = LutSimulator::new(net);
    sim.eval(&words);
    sim.outputs(&words).iter().map(|&w| w & 1 == 1).collect()
}

/// Check a single LUT's table against an expected function (test helper).
pub fn lut_matches(lut: &Lut, f: impl Fn(&[bool]) -> bool) -> bool {
    let n = lut.inputs.len();
    (0..(1usize << n)).all(|m| {
        let bits: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
        table_eval(lut.table, &bits) == f(&bits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2_lut() -> LutNetwork {
        LutNetwork {
            name: "xor2".into(),
            k: 4,
            num_inputs: 2,
            luts: vec![Lut {
                inputs: vec![LutIn::Input(0), LutIn::Input(1)],
                table: 0b0110,
            }],
            ffs: vec![],
            outputs: vec![("o".into(), LutIn::Lut(0))],
        }
    }

    #[test]
    fn xor_lut_simulates() {
        let n = xor2_lut();
        n.validate().unwrap();
        assert_eq!(lut_eval_comb(&n, &[false, false]), vec![false]);
        assert_eq!(lut_eval_comb(&n, &[true, false]), vec![true]);
        assert_eq!(lut_eval_comb(&n, &[true, true]), vec![false]);
        assert_eq!(n.depth(), 1);
        assert_eq!(n.block_count(), 1);
        assert_eq!(n.io_count(), 3);
    }

    #[test]
    fn registered_lut_packs() {
        let n = LutNetwork {
            name: "reg".into(),
            k: 4,
            num_inputs: 1,
            luts: vec![Lut {
                inputs: vec![LutIn::Input(0)],
                table: 0b01, // NOT
            }],
            ffs: vec![FlipFlop {
                d: LutIn::Lut(0),
                init: false,
            }],
            outputs: vec![("q".into(), LutIn::Ff(0))],
        };
        n.validate().unwrap();
        assert_eq!(n.block_count(), 1, "FF packs with its driving LUT");

        let mut sim = LutSimulator::new(&n);
        sim.step(&[0]); // d = !0 = 1 latched
        assert_eq!(sim.read_state(), vec![u64::MAX]);
    }

    #[test]
    fn input_fed_ff_needs_own_block() {
        let n = LutNetwork {
            name: "reg".into(),
            k: 4,
            num_inputs: 1,
            luts: vec![],
            ffs: vec![FlipFlop {
                d: LutIn::Input(0),
                init: false,
            }],
            outputs: vec![("q".into(), LutIn::Ff(0))],
        };
        assert_eq!(n.block_count(), 1);
        assert_eq!(n.unpacked_ff_count(), 1);
    }

    #[test]
    fn validate_catches_non_topological() {
        let n = LutNetwork {
            name: "bad".into(),
            k: 4,
            num_inputs: 0,
            luts: vec![Lut {
                inputs: vec![LutIn::Lut(0)],
                table: 0b01,
            }],
            ffs: vec![],
            outputs: vec![("o".into(), LutIn::Lut(0))],
        };
        assert!(n.validate().is_err());
    }

    #[test]
    fn validate_catches_wide_lut() {
        let n = LutNetwork {
            name: "bad".into(),
            k: 2,
            num_inputs: 3,
            luts: vec![Lut {
                inputs: vec![LutIn::Input(0), LutIn::Input(1), LutIn::Input(2)],
                table: 0,
            }],
            ffs: vec![],
            outputs: vec![("o".into(), LutIn::Lut(0))],
        };
        assert!(n.validate().is_err());
    }

    #[test]
    fn state_roundtrip() {
        let n = LutNetwork {
            name: "ff".into(),
            k: 4,
            num_inputs: 1,
            luts: vec![],
            ffs: vec![FlipFlop {
                d: LutIn::Input(0),
                init: false,
            }],
            outputs: vec![("q".into(), LutIn::Ff(0))],
        };
        let mut sim = LutSimulator::new(&n);
        sim.step(&[u64::MAX]);
        let s = sim.read_state();
        sim.step(&[0]);
        assert_eq!(sim.read_state(), vec![0]);
        sim.load_state(&s);
        assert_eq!(sim.read_state(), vec![u64::MAX]);
    }
}
