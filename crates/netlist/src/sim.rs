//! Bit-parallel functional simulation.
//!
//! [`Simulator`] evaluates a netlist 64 input vectors at a time (one bit
//! lane per vector). It doubles as:
//!
//! * the golden model for LUT-mapping equivalence checks,
//! * the paper's *readback* path — [`Simulator::read_state`] exposes every
//!   flip-flop (observability), and [`Simulator::load_state`] writes them
//!   (controllability), exactly the two properties §3 demands of circuits
//!   that may be preempted.

use crate::gate::Gate;
use crate::graph::Netlist;

/// A 64-lane functional simulator for one netlist.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    net: &'a Netlist,
    /// Current value of every node, one bit per lane.
    values: Vec<u64>,
    /// Current flip-flop outputs (indexed like `net.dff_nodes()`).
    state: Vec<u64>,
    dffs: Vec<crate::gate::NodeId>,
}

impl<'a> Simulator<'a> {
    /// Create a simulator with all flip-flops at their power-up values
    /// (replicated across all 64 lanes).
    pub fn new(net: &'a Netlist) -> Self {
        let dffs = net.dff_nodes();
        let state = dffs
            .iter()
            .map(|&id| match net.gate(id) {
                Gate::Dff { init, .. } => {
                    if init {
                        u64::MAX
                    } else {
                        0
                    }
                }
                _ => unreachable!("dff_nodes returned non-DFF"),
            })
            .collect();
        Simulator {
            net,
            values: vec![0; net.nodes().len()],
            state,
            dffs,
        }
    }

    /// Evaluate all combinational logic for the given primary-input words
    /// (`inputs[i]` carries input bit `i` across 64 lanes). Flip-flop
    /// outputs present their *current* state; registers are not advanced.
    pub fn eval(&mut self, inputs: &[u64]) {
        assert_eq!(
            inputs.len(),
            self.net.num_inputs(),
            "input word count mismatch"
        );
        let mut dff_cursor = 0usize;
        for (i, g) in self.net.nodes().iter().enumerate() {
            let v = match *g {
                Gate::Input { bit } => inputs[bit as usize],
                Gate::Const(c) => {
                    if c {
                        u64::MAX
                    } else {
                        0
                    }
                }
                Gate::Not(a) => !self.values[a.index()],
                Gate::And(a, b) => self.values[a.index()] & self.values[b.index()],
                Gate::Or(a, b) => self.values[a.index()] | self.values[b.index()],
                Gate::Xor(a, b) => self.values[a.index()] ^ self.values[b.index()],
                Gate::Nand(a, b) => !(self.values[a.index()] & self.values[b.index()]),
                Gate::Nor(a, b) => !(self.values[a.index()] | self.values[b.index()]),
                Gate::Xnor(a, b) => !(self.values[a.index()] ^ self.values[b.index()]),
                Gate::Mux { sel, lo, hi } => {
                    let s = self.values[sel.index()];
                    (s & self.values[hi.index()]) | (!s & self.values[lo.index()])
                }
                Gate::Dff { .. } => {
                    let v = self.state[dff_cursor];
                    dff_cursor += 1;
                    v
                }
            };
            self.values[i] = v;
        }
    }

    /// Advance every register by one clock edge: each flip-flop latches the
    /// current value of its `d` node. Call after [`Simulator::eval`].
    pub fn clock(&mut self) {
        for (k, &id) in self.dffs.iter().enumerate() {
            if let Gate::Dff { d, .. } = self.net.gate(id) {
                self.state[k] = self.values[d.index()];
            }
        }
    }

    /// Evaluate then clock — one full synchronous cycle.
    pub fn step(&mut self, inputs: &[u64]) {
        self.eval(inputs);
        self.clock();
    }

    /// Value word of primary output `idx` (order of [`Netlist::outputs`]).
    pub fn output(&self, idx: usize) -> u64 {
        let (_, id) = &self.net.outputs()[idx];
        self.values[id.index()]
    }

    /// All output words in declaration order.
    pub fn outputs(&self) -> Vec<u64> {
        self.net
            .outputs()
            .iter()
            .map(|(_, id)| self.values[id.index()])
            .collect()
    }

    /// Value word of an arbitrary node (for cone extraction and debugging).
    pub fn node_value(&self, id: crate::gate::NodeId) -> u64 {
        self.values[id.index()]
    }

    /// **Readback** (observability): snapshot all flip-flop words in
    /// `dff_nodes()` order.
    pub fn read_state(&self) -> Vec<u64> {
        self.state.clone()
    }

    /// **State load** (controllability): overwrite all flip-flops.
    ///
    /// # Panics
    /// Panics if `state` length differs from the flip-flop count.
    pub fn load_state(&mut self, state: &[u64]) {
        assert_eq!(state.len(), self.state.len(), "state width mismatch");
        self.state.copy_from_slice(state);
    }

    /// Reset every flip-flop to its power-up value in all lanes.
    pub fn reset(&mut self) {
        for (k, &id) in self.dffs.iter().enumerate() {
            if let Gate::Dff { init, .. } = self.net.gate(id) {
                self.state[k] = if init { u64::MAX } else { 0 };
            }
        }
    }

    /// Number of flip-flops.
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }
}

/// Evaluate a purely combinational netlist on single scalar inputs,
/// returning scalar outputs. Convenience wrapper used heavily in tests.
pub fn eval_comb(net: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = inputs
        .iter()
        .map(|&b| if b { u64::MAX } else { 0 })
        .collect();
    let mut sim = Simulator::new(net);
    sim.eval(&words);
    sim.outputs().iter().map(|&w| w & 1 == 1).collect()
}

/// Pack an integer into LSB-first input words, one lane (lane 0) wide.
pub fn scalar_inputs(value: u64, width: usize) -> Vec<u64> {
    (0..width).map(|i| (value >> i) & 1).collect()
}

/// Extract lane-0 bits of output words into an integer (LSB-first).
pub fn scalar_output(words: &[u64]) -> u64 {
    words
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &w)| acc | ((w & 1) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Builder;

    #[test]
    fn gates_behave() {
        let mut b = Builder::new("g");
        let x = b.input();
        let y = b.input();
        let and = b.and(x, y);
        let or = b.or(x, y);
        let xor = b.xor(x, y);
        let nand = b.nand(x, y);
        let nor = b.nor(x, y);
        let xnor = b.xnor(x, y);
        let not = b.not(x);
        b.output("and", and);
        b.output("or", or);
        b.output("xor", xor);
        b.output("nand", nand);
        b.output("nor", nor);
        b.output("xnor", xnor);
        b.output("not", not);
        let n = b.finish();
        for (xv, yv) in [(false, false), (false, true), (true, false), (true, true)] {
            let o = eval_comb(&n, &[xv, yv]);
            assert_eq!(o[0], xv & yv);
            assert_eq!(o[1], xv | yv);
            assert_eq!(o[2], xv ^ yv);
            assert_eq!(o[3], !(xv & yv));
            assert_eq!(o[4], !(xv | yv));
            assert_eq!(o[5], !(xv ^ yv));
            assert_eq!(o[6], !xv);
        }
    }

    #[test]
    fn mux_selects() {
        let mut b = Builder::new("m");
        let s = b.input();
        let lo = b.input();
        let hi = b.input();
        let m = b.mux(s, lo, hi);
        b.output("m", m);
        let n = b.finish();
        assert_eq!(eval_comb(&n, &[false, true, false]), vec![true]); // sel=0 -> lo
        assert_eq!(eval_comb(&n, &[true, true, false]), vec![false]); // sel=1 -> hi
    }

    #[test]
    fn lanes_are_independent() {
        let mut b = Builder::new("lanes");
        let x = b.input();
        let y = b.input();
        let z = b.xor(x, y);
        b.output("z", z);
        let n = b.finish();
        let mut sim = Simulator::new(&n);
        // lane i of x = bit i of 0b...0101, y = 0b...0011
        sim.eval(&[0b0101, 0b0011]);
        assert_eq!(sim.output(0) & 0xF, 0b0110);
    }

    #[test]
    fn toggle_flip_flop_sequences() {
        let mut b = Builder::new("toggle");
        let q = b.dff_placeholder(false);
        let nq = b.not(q);
        b.connect_dff(q, nq);
        b.output("q", q);
        let n = b.finish();
        let mut sim = Simulator::new(&n);
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.eval(&[]);
            seen.push(sim.output(0) & 1);
            sim.clock();
        }
        assert_eq!(seen, vec![0, 1, 0, 1]);
    }

    #[test]
    fn dff_init_value_respected() {
        let mut b = Builder::new("init");
        let x = b.input();
        let q = b.dff(x, true);
        b.output("q", q);
        let n = b.finish();
        let mut sim = Simulator::new(&n);
        sim.eval(&[0]);
        assert_eq!(sim.output(0), u64::MAX, "power-up value must be 1");
        sim.clock();
        sim.eval(&[0]);
        assert_eq!(sim.output(0), 0, "latched d=0");
    }

    #[test]
    fn readback_and_restore_roundtrip() {
        // 3-bit counter; run 5 cycles, save, run 3 more, restore, re-run 3,
        // and require identical trajectories (paper §3 save/restore).
        let n = crate::library::seq::counter("cnt", 3);
        let mut sim = Simulator::new(&n);
        for _ in 0..5 {
            sim.step(&[u64::MAX]); // enable = 1
        }
        let saved = sim.read_state();
        let mut first = Vec::new();
        for _ in 0..3 {
            sim.step(&[u64::MAX]);
            first.push(sim.read_state());
        }
        sim.load_state(&saved);
        let mut second = Vec::new();
        for _ in 0..3 {
            sim.step(&[u64::MAX]);
            second.push(sim.read_state());
        }
        assert_eq!(first, second);
    }

    #[test]
    fn reset_restores_power_up() {
        let mut b = Builder::new("r");
        let x = b.input();
        let q0 = b.dff(x, false);
        let q1 = b.dff(x, true);
        b.output("q0", q0);
        b.output("q1", q1);
        let n = b.finish();
        let mut sim = Simulator::new(&n);
        sim.step(&[u64::MAX]);
        sim.reset();
        sim.eval(&[0]);
        assert_eq!(sim.output(0), 0);
        assert_eq!(sim.output(1), u64::MAX);
    }

    #[test]
    fn scalar_helpers_roundtrip() {
        let words = scalar_inputs(0b1011, 4);
        assert_eq!(words, vec![1, 1, 0, 1]);
        assert_eq!(scalar_output(&words), 0b1011);
    }
}
