//! The netlist DAG and its builder.
//!
//! A [`Netlist`] is an append-only table of [`Gate`] nodes plus a list of
//! named primary outputs. Flip-flop `d` edges are *sequential* and excluded
//! from the combinational topological order, so feedback through registers
//! is legal while combinational loops are rejected by [`Netlist::validate`].

use crate::gate::{Gate, NodeId};
use std::collections::HashMap;

/// A gate-level circuit.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Gate>,
    n_inputs: u32,
    outputs: Vec<(String, NodeId)>,
}

/// Size/shape summary of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total nodes (including inputs and constants).
    pub nodes: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Combinational gates (everything except inputs, constants, DFFs).
    pub gates: usize,
    /// Flip-flops.
    pub dffs: usize,
    /// Longest combinational path, in gate levels.
    pub depth: usize,
}

/// Errors detected by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate references a node id at or beyond its own position (forward
    /// reference) or beyond the table.
    ForwardReference {
        /// The offending node.
        node: NodeId,
        /// The out-of-range reference.
        refers: NodeId,
    },
    /// Primary input bits are not exactly `0..n_inputs`.
    BadInputNumbering,
    /// An output references a nonexistent node.
    DanglingOutput(String),
    /// The netlist has no outputs (nothing observable).
    NoOutputs,
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::ForwardReference { node, refers } => {
                write!(
                    f,
                    "node {node} references {refers} which is not strictly earlier"
                )
            }
            NetlistError::BadInputNumbering => write!(f, "primary input bits are not dense 0..n"),
            NetlistError::DanglingOutput(name) => {
                write!(f, "output '{name}' references missing node")
            }
            NetlistError::NoOutputs => write!(f, "netlist has no primary outputs"),
        }
    }
}

impl std::error::Error for NetlistError {}

impl Netlist {
    /// The circuit's name (used in reports and OS tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Node table in creation order. Creation order is a valid
    /// combinational topological order by construction (the builder only
    /// permits backward references), with flip-flop outputs acting as
    /// sources.
    pub fn nodes(&self) -> &[Gate] {
        &self.nodes
    }

    /// Gate at `id`.
    pub fn gate(&self, id: NodeId) -> Gate {
        self.nodes[id.index()]
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.n_inputs as usize
    }

    /// Primary outputs as `(name, node)` pairs.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Ids of all flip-flop nodes, in table order.
    pub fn dff_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_dff())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Whether the circuit contains any flip-flop (i.e. is sequential).
    pub fn is_sequential(&self) -> bool {
        self.nodes.iter().any(|g| g.is_dff())
    }

    /// Combinational level of every node: inputs/constants/DFF outputs are
    /// level 0; a gate is 1 + max(level of fan-in).
    pub fn levels(&self) -> Vec<usize> {
        let mut lvl = vec![0usize; self.nodes.len()];
        for (i, g) in self.nodes.iter().enumerate() {
            let mut m = 0usize;
            let mut has_fanin = false;
            for f in g.comb_fanin().iter() {
                has_fanin = true;
                m = m.max(lvl[f.index()]);
            }
            lvl[i] = if has_fanin { m + 1 } else { 0 };
        }
        lvl
    }

    /// Size/shape summary.
    pub fn stats(&self) -> NetlistStats {
        let mut gates = 0;
        let mut dffs = 0;
        for g in &self.nodes {
            match g {
                Gate::Input { .. } | Gate::Const(_) => {}
                Gate::Dff { .. } => dffs += 1,
                _ => gates += 1,
            }
        }
        let depth = self.levels().into_iter().max().unwrap_or(0);
        NetlistStats {
            nodes: self.nodes.len(),
            inputs: self.n_inputs as usize,
            outputs: self.outputs.len(),
            gates,
            dffs,
            depth,
        }
    }

    /// Structural sanity check. The builder can't create most of these
    /// errors, but netlists can also be assembled by deserialization or
    /// transformation passes, so the invariants are enforced here too.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut seen_bits = Vec::new();
        for (i, g) in self.nodes.iter().enumerate() {
            for r in g.comb_fanin().iter() {
                if r.index() >= i {
                    return Err(NetlistError::ForwardReference {
                        node: NodeId(i as u32),
                        refers: r,
                    });
                }
            }
            match *g {
                Gate::Input { bit } => seen_bits.push(bit),
                // A DFF's d edge may reference any node (feedback is legal)
                // but must at least be in the table.
                Gate::Dff { d, .. } if d.index() >= self.nodes.len() => {
                    return Err(NetlistError::ForwardReference {
                        node: NodeId(i as u32),
                        refers: d,
                    });
                }
                _ => {}
            }
        }
        seen_bits.sort_unstable();
        let expect: Vec<u32> = (0..self.n_inputs).collect();
        if seen_bits != expect {
            return Err(NetlistError::BadInputNumbering);
        }
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        for (name, id) in &self.outputs {
            if id.index() >= self.nodes.len() {
                return Err(NetlistError::DanglingOutput(name.clone()));
            }
        }
        Ok(())
    }

    /// Content hash (FNV-1a) over the netlist's full structure: name,
    /// node table, input count, and outputs. Two netlists with equal
    /// hashes are, for cache purposes, the same circuit — the compile
    /// cache keys on this together with the compile options, so identical
    /// workload suites are placed and routed once per sweep rather than
    /// once per sweep point.
    pub fn content_hash(&self) -> u64 {
        fn eat(h: &mut u64, b: u64) {
            for i in 0..8 {
                *h ^= (b >> (i * 8)) & 0xFF;
                *h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        fn eat_str(h: &mut u64, s: &str) {
            for &b in s.as_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x1000_0000_01b3);
            }
            *h ^= 0xFF; // terminator so "ab","c" != "a","bc"
            *h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        eat_str(&mut h, &self.name);
        eat(&mut h, self.n_inputs as u64);
        eat(&mut h, self.nodes.len() as u64);
        for g in &self.nodes {
            let (tag, a, b, c) = match *g {
                Gate::Input { bit } => (0, bit as u64, 0, 0),
                Gate::Const(v) => (1, v as u64, 0, 0),
                Gate::Not(x) => (2, x.0 as u64, 0, 0),
                Gate::And(x, y) => (3, x.0 as u64, y.0 as u64, 0),
                Gate::Or(x, y) => (4, x.0 as u64, y.0 as u64, 0),
                Gate::Xor(x, y) => (5, x.0 as u64, y.0 as u64, 0),
                Gate::Nand(x, y) => (6, x.0 as u64, y.0 as u64, 0),
                Gate::Nor(x, y) => (7, x.0 as u64, y.0 as u64, 0),
                Gate::Xnor(x, y) => (8, x.0 as u64, y.0 as u64, 0),
                Gate::Mux { sel, lo, hi } => (9, sel.0 as u64, lo.0 as u64, hi.0 as u64),
                Gate::Dff { d, init } => (10, d.0 as u64, init as u64, 0),
            };
            eat(&mut h, tag);
            eat(&mut h, a);
            eat(&mut h, b);
            eat(&mut h, c);
        }
        eat(&mut h, self.outputs.len() as u64);
        for (name, id) in &self.outputs {
            eat_str(&mut h, name);
            eat(&mut h, id.0 as u64);
        }
        h
    }

    /// Fanout count per node (combinational edges plus DFF `d` edges plus
    /// primary outputs). Used by the mapper's cone-duplication heuristics
    /// and the placer's wiring estimates.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.nodes.len()];
        for g in &self.nodes {
            for f in g.comb_fanin().iter() {
                fo[f.index()] += 1;
            }
            if let Gate::Dff { d, .. } = *g {
                fo[d.index()] += 1;
            }
        }
        for (_, id) in &self.outputs {
            fo[id.index()] += 1;
        }
        fo
    }
}

/// Incremental netlist constructor.
///
/// Only backward references are possible (each factory method returns the
/// id of the node it just appended), so the node table is always in
/// combinational topological order. Flip-flop feedback is expressed with
/// [`Builder::dff_placeholder`] + [`Builder::connect_dff`].
#[derive(Debug)]
pub struct Builder {
    name: String,
    nodes: Vec<Gate>,
    n_inputs: u32,
    outputs: Vec<(String, NodeId)>,
    cache: HashMap<Gate, NodeId>,
    const_false: Option<NodeId>,
    const_true: Option<NodeId>,
}

impl Builder {
    /// Start a circuit named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Builder {
            name: name.into(),
            nodes: Vec::new(),
            n_inputs: 0,
            outputs: Vec::new(),
            cache: HashMap::new(),
            const_false: None,
            const_true: None,
        }
    }

    fn push(&mut self, g: Gate) -> NodeId {
        // Structural hashing: identical gates on identical fan-in collapse
        // to one node. DFF placeholders must stay distinct, so they bypass
        // the cache (handled by callers).
        if let Some(&id) = self.cache.get(&g) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(g);
        self.cache.insert(g, id);
        id
    }

    /// Append one primary input.
    pub fn input(&mut self) -> NodeId {
        let bit = self.n_inputs;
        self.n_inputs += 1;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Gate::Input { bit });
        id
    }

    /// Append `n` primary inputs, returned LSB-first.
    pub fn inputs(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Constant node.
    pub fn constant(&mut self, v: bool) -> NodeId {
        let slot = if v {
            &mut self.const_true
        } else {
            &mut self.const_false
        };
        if let Some(id) = *slot {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Gate::Const(v));
        *slot = Some(id);
        id
    }

    /// Inverter.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(Gate::Not(a))
    }

    /// 2-input AND.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::And(a, b))
    }

    /// 2-input OR.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Or(a, b))
    }

    /// 2-input XOR.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xor(a, b))
    }

    /// 2-input NAND.
    pub fn nand(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Nand(a, b))
    }

    /// 2-input NOR.
    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Nor(a, b))
    }

    /// 2-input XNOR.
    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xnor(a, b))
    }

    /// 2:1 mux (`sel ? hi : lo`).
    pub fn mux(&mut self, sel: NodeId, lo: NodeId, hi: NodeId) -> NodeId {
        self.push(Gate::Mux { sel, lo, hi })
    }

    /// N-ary AND tree over a non-empty slice.
    pub fn and_tree(&mut self, xs: &[NodeId]) -> NodeId {
        self.tree(xs, Builder::and)
    }

    /// N-ary OR tree over a non-empty slice.
    pub fn or_tree(&mut self, xs: &[NodeId]) -> NodeId {
        self.tree(xs, Builder::or)
    }

    /// N-ary XOR tree over a non-empty slice.
    pub fn xor_tree(&mut self, xs: &[NodeId]) -> NodeId {
        self.tree(xs, Builder::xor)
    }

    fn tree(&mut self, xs: &[NodeId], op: fn(&mut Self, NodeId, NodeId) -> NodeId) -> NodeId {
        assert!(!xs.is_empty(), "tree over empty slice");
        let mut layer: Vec<NodeId> = xs.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    op(self, pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Append a D flip-flop whose data input is `d`.
    pub fn dff(&mut self, d: NodeId, init: bool) -> NodeId {
        // Do NOT structurally hash flip-flops: two registers with the same
        // input are distinct state elements.
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Gate::Dff { d, init });
        id
    }

    /// Append a flip-flop whose data input will be wired later with
    /// [`Builder::connect_dff`] — required for feedback (e.g. counters).
    /// Until connected, the placeholder feeds back its own output.
    pub fn dff_placeholder(&mut self, init: bool) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Gate::Dff { d: id, init });
        id
    }

    /// Wire the data input of a placeholder flip-flop.
    ///
    /// # Panics
    /// Panics if `ff` is not a flip-flop.
    pub fn connect_dff(&mut self, ff: NodeId, d: NodeId) {
        match &mut self.nodes[ff.index()] {
            Gate::Dff { d: slot, .. } => *slot = d,
            other => panic!("connect_dff on non-DFF node ({})", other.kind()),
        }
    }

    /// Declare a primary output.
    pub fn output(&mut self, name: impl Into<String>, id: NodeId) {
        self.outputs.push((name.into(), id));
    }

    /// Declare a bus of outputs `name[0]`, `name[1]`, … (LSB-first).
    pub fn output_bus(&mut self, name: &str, ids: &[NodeId]) {
        for (i, &id) in ids.iter().enumerate() {
            self.outputs.push((format!("{name}[{i}]"), id));
        }
    }

    /// Number of primary inputs declared so far.
    pub fn input_count(&self) -> usize {
        self.n_inputs as usize
    }

    /// Finish, validate, and return the netlist.
    ///
    /// # Panics
    /// Panics if the constructed netlist is invalid — builder misuse is a
    /// programming error in the circuit generator.
    pub fn finish(self) -> Netlist {
        let n = Netlist {
            name: self.name,
            nodes: self.nodes,
            n_inputs: self.n_inputs,
            outputs: self.outputs,
        };
        if let Err(e) = n.validate() {
            panic!("invalid netlist '{}': {e}", n.name());
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut b = Builder::new("tiny");
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y);
        let o = b.xor(a, x);
        b.output("o", o);
        b.finish()
    }

    #[test]
    fn build_and_stats() {
        let n = tiny();
        let s = n.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 2);
        assert_eq!(s.dffs, 0);
        assert_eq!(s.depth, 2);
        assert!(!n.is_sequential());
    }

    #[test]
    fn structural_hashing_dedupes_gates_but_not_dffs() {
        let mut b = Builder::new("dedupe");
        let x = b.input();
        let y = b.input();
        let a1 = b.and(x, y);
        let a2 = b.and(x, y);
        assert_eq!(a1, a2, "identical AND gates must merge");
        let f1 = b.dff(a1, false);
        let f2 = b.dff(a1, false);
        assert_ne!(f1, f2, "registers must never merge");
        b.output("o", f1);
        b.output("p", f2);
        let n = b.finish();
        assert_eq!(n.stats().dffs, 2);
    }

    #[test]
    fn constants_are_shared() {
        let mut b = Builder::new("c");
        let t1 = b.constant(true);
        let t2 = b.constant(true);
        let f1 = b.constant(false);
        assert_eq!(t1, t2);
        assert_ne!(t1, f1);
        let x = b.input();
        let o = b.and(x, t1);
        b.output("o", o);
        b.finish();
    }

    #[test]
    fn dff_feedback_via_placeholder() {
        // 1-bit toggle: q' = !q
        let mut b = Builder::new("toggle");
        let q = b.dff_placeholder(false);
        let nq = b.not(q);
        b.connect_dff(q, nq);
        b.output("q", q);
        // No primary inputs needed; n_inputs = 0 is valid.
        let n = b.finish();
        assert!(n.is_sequential());
        assert_eq!(n.stats().dffs, 1);
    }

    #[test]
    fn levels_ignore_sequential_edges() {
        let mut b = Builder::new("lv");
        let x = b.input();
        let q = b.dff_placeholder(false);
        let s = b.xor(x, q);
        b.connect_dff(q, s);
        b.output("s", s);
        let n = b.finish();
        let lv = n.levels();
        // q (DFF) is a level-0 source even though its d comes from level-1 s.
        assert_eq!(lv[q.index()], 0);
        assert_eq!(lv[s.index()], 1);
    }

    #[test]
    fn trees_reduce_correctly() {
        let mut b = Builder::new("tree");
        let xs = b.inputs(7);
        let a = b.and_tree(&xs);
        let o = b.or_tree(&xs);
        let x = b.xor_tree(&xs);
        b.output("a", a);
        b.output("o", o);
        b.output("x", x);
        let n = b.finish();
        // Depth of a 7-leaf balanced tree is 3.
        assert_eq!(n.stats().depth, 3);
    }

    #[test]
    fn content_hash_distinguishes_structure_and_name() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.content_hash(), b.content_hash(), "same build, same hash");

        let mut bld = Builder::new("tiny2"); // same structure, new name
        let x = bld.input();
        let y = bld.input();
        let g = bld.and(x, y);
        let o = bld.xor(g, x);
        bld.output("o", o);
        let renamed = bld.finish();
        assert_ne!(a.content_hash(), renamed.content_hash());

        let mut bld = Builder::new("tiny"); // same name, new structure
        let x = bld.input();
        let y = bld.input();
        let g = bld.or(x, y);
        let o = bld.xor(g, x);
        bld.output("o", o);
        let restructured = bld.finish();
        assert_ne!(a.content_hash(), restructured.content_hash());
    }

    #[test]
    fn validate_rejects_dangling_output() {
        let n = Netlist {
            name: "bad".into(),
            nodes: vec![Gate::Input { bit: 0 }],
            n_inputs: 1,
            outputs: vec![("o".into(), NodeId(99))],
        };
        assert!(matches!(n.validate(), Err(NetlistError::DanglingOutput(_))));
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let n = Netlist {
            name: "bad".into(),
            nodes: vec![Gate::Not(NodeId(1)), Gate::Input { bit: 0 }],
            n_inputs: 1,
            outputs: vec![("o".into(), NodeId(0))],
        };
        assert!(matches!(
            n.validate(),
            Err(NetlistError::ForwardReference { .. })
        ));
    }

    #[test]
    fn validate_rejects_no_outputs() {
        let n = Netlist {
            name: "bad".into(),
            nodes: vec![Gate::Input { bit: 0 }],
            n_inputs: 1,
            outputs: vec![],
        };
        assert_eq!(n.validate(), Err(NetlistError::NoOutputs));
    }

    #[test]
    fn fanout_counts_include_outputs_and_dff_d() {
        let mut b = Builder::new("fo");
        let x = b.input();
        let inv = b.not(x);
        let ff = b.dff(inv, false);
        b.output("q", ff);
        b.output("inv", inv);
        let n = b.finish();
        let fo = n.fanout_counts();
        assert_eq!(fo[x.index()], 1); // -> inv
        assert_eq!(fo[inv.index()], 2); // -> dff.d and output
        assert_eq!(fo[ff.index()], 1); // -> output
    }
}
