//! # netlist — gate-level logic networks and a mini synthesis flow
//!
//! The VFPGA paper's operating-system layer manages *circuits*: it
//! downloads them, splits them into partitions/segments/pages, estimates
//! their latency, and saves/restores their flip-flop state. To exercise
//! those code paths on real data this crate provides:
//!
//! * [`Netlist`] — a gate-level DAG (2-input gates, muxes, D flip-flops)
//!   with a [`Builder`] API,
//! * [`sim::Simulator`] — 64-way bit-parallel functional simulation of a
//!   netlist, including flip-flop state readout and load (the paper's
//!   *observability* and *controllability* requirements),
//! * [`mapper`] — technology mapping onto K-input LUTs, producing a
//!   [`LutNetwork`] that the `pnr` crate places and routes onto the
//!   simulated FPGA,
//! * [`library`] — ~20 parametric generator circuits (adders, multipliers,
//!   CRCs, LFSRs, comparators, encoders, ALU, …) standing in for the
//!   paper's application circuits (codecs, modems, protocol engines).
//!
//! Everything is deterministic and pure-Rust; no external CAD tools.

pub mod gate;
pub mod graph;
pub mod library;
pub mod lutnet;
pub mod mapper;
pub mod sim;
pub mod truth;

pub use gate::{Gate, NodeId};
pub use graph::{Builder, Netlist, NetlistStats};
pub use lutnet::{FlipFlop, Lut, LutIn, LutNetwork};
pub use mapper::{map_to_luts, MapOptions};
pub use sim::Simulator;
