//! Truth-table extraction for logic cones.
//!
//! The LUT mapper selects a cut (a set of ≤ K leaf nodes) for each mapped
//! node and needs the Boolean function of the cone between the leaves and
//! the root. [`cone_truth_table`] computes it by symbolic bit-parallel
//! evaluation: leaf `i` is assigned the canonical variable word `VAR[i]`
//! and the cone is evaluated bottom-up, yielding the truth table directly
//! in the output word. With K ≤ 6 one 64-bit word holds the whole table.

use crate::gate::{Gate, NodeId};
use crate::graph::Netlist;
use std::collections::HashMap;

/// Canonical truth-table words for up to 6 variables: bit `m` of `VAR[i]`
/// is bit `i` of minterm index `m`.
pub const VAR: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Mask selecting the meaningful low `2^k` bits of a k-variable table.
#[inline]
pub fn table_mask(k: usize) -> u64 {
    if k >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << k)) - 1
    }
}

/// Compute the truth table of the cone rooted at `root` with the given
/// `leaves` (≤ 6). Every path from `root` must terminate at a leaf — the
/// caller (the cut enumerator) guarantees this; a cone that escapes its
/// leaves returns `None`.
pub fn cone_truth_table(net: &Netlist, root: NodeId, leaves: &[NodeId]) -> Option<u64> {
    assert!(leaves.len() <= 6, "cone too wide for one table word");
    let mut memo: HashMap<NodeId, u64> = HashMap::with_capacity(16);
    for (i, &l) in leaves.iter().enumerate() {
        memo.insert(l, VAR[i]);
    }
    let full = eval_rec(net, root, &mut memo)?;
    Some(full & table_mask(leaves.len()))
}

fn eval_rec(net: &Netlist, node: NodeId, memo: &mut HashMap<NodeId, u64>) -> Option<u64> {
    if let Some(&v) = memo.get(&node) {
        return Some(v);
    }
    let v = match net.gate(node) {
        // Reaching a primary input, register, or constant that is not a
        // declared leaf: constants are fine (they're closed), anything else
        // means the cut does not actually cover the cone.
        Gate::Const(c) => {
            if c {
                u64::MAX
            } else {
                0
            }
        }
        Gate::Input { .. } | Gate::Dff { .. } => return None,
        Gate::Not(a) => !eval_rec(net, a, memo)?,
        Gate::And(a, b) => eval_rec(net, a, memo)? & eval_rec(net, b, memo)?,
        Gate::Or(a, b) => eval_rec(net, a, memo)? | eval_rec(net, b, memo)?,
        Gate::Xor(a, b) => eval_rec(net, a, memo)? ^ eval_rec(net, b, memo)?,
        Gate::Nand(a, b) => !(eval_rec(net, a, memo)? & eval_rec(net, b, memo)?),
        Gate::Nor(a, b) => !(eval_rec(net, a, memo)? | eval_rec(net, b, memo)?),
        Gate::Xnor(a, b) => !(eval_rec(net, a, memo)? ^ eval_rec(net, b, memo)?),
        Gate::Mux { sel, lo, hi } => {
            let s = eval_rec(net, sel, memo)?;
            let l = eval_rec(net, lo, memo)?;
            let h = eval_rec(net, hi, memo)?;
            (s & h) | (!s & l)
        }
    };
    memo.insert(node, v);
    Some(v)
}

/// Evaluate a ≤6-input truth table word on a specific input assignment.
#[inline]
pub fn table_eval(table: u64, inputs: &[bool]) -> bool {
    let mut idx = 0usize;
    for (i, &b) in inputs.iter().enumerate() {
        if b {
            idx |= 1 << i;
        }
    }
    (table >> idx) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Builder;

    #[test]
    fn var_words_are_canonical() {
        // Minterm 5 = 0b101: x0=1, x1=0, x2=1.
        assert_eq!((VAR[0] >> 5) & 1, 1);
        assert_eq!((VAR[1] >> 5) & 1, 0);
        assert_eq!((VAR[2] >> 5) & 1, 1);
    }

    #[test]
    fn and_cone_table() {
        let mut b = Builder::new("t");
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y);
        b.output("a", a);
        let n = b.finish();
        let t = cone_truth_table(&n, a, &[x, y]).unwrap();
        assert_eq!(t, 0b1000); // AND over 2 vars
    }

    #[test]
    fn xor3_cone_table() {
        let mut b = Builder::new("t");
        let xs = b.inputs(3);
        let x = b.xor_tree(&xs);
        b.output("x", x);
        let n = b.finish();
        let t = cone_truth_table(&n, x, &xs).unwrap();
        assert_eq!(t, 0b1001_0110); // parity of 3 vars
    }

    #[test]
    fn cone_escaping_leaves_is_rejected() {
        let mut b = Builder::new("t");
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y);
        b.output("a", a);
        let n = b.finish();
        // Leaves = {x} only: the cone still reaches y -> None.
        assert_eq!(cone_truth_table(&n, a, &[x]), None);
    }

    #[test]
    fn constants_are_closed() {
        let mut b = Builder::new("t");
        let x = b.input();
        let one = b.constant(true);
        let a = b.and(x, one);
        b.output("a", a);
        let n = b.finish();
        let t = cone_truth_table(&n, a, &[x]).unwrap();
        assert_eq!(t, 0b10); // identity of 1 var
    }

    #[test]
    fn table_eval_agrees_with_simulation() {
        let mut b = Builder::new("t");
        let xs = b.inputs(4);
        let a = b.and(xs[0], xs[1]);
        let o = b.or(xs[2], xs[3]);
        let m = b.mux(a, o, xs[3]);
        b.output("m", m);
        let n = b.finish();
        let t = cone_truth_table(&n, m, &xs).unwrap();
        for v in 0..16u64 {
            let bits: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            let sim = crate::sim::eval_comb(&n, &bits)[0];
            assert_eq!(table_eval(t, &bits), sim, "minterm {v}");
        }
    }

    #[test]
    fn mask_widths() {
        assert_eq!(table_mask(0), 0b1);
        assert_eq!(table_mask(1), 0b11);
        assert_eq!(table_mask(2), 0xF);
        assert_eq!(table_mask(4), 0xFFFF);
        assert_eq!(table_mask(6), u64::MAX);
    }
}
