//! Technology mapping onto K-input LUTs.
//!
//! A classic cut-based mapper: enumerate K-feasible cuts bottom-up with
//! pruning, label each node with its optimal arrival depth, then cover the
//! netlist from its roots using each node's depth-best cut and extract the
//! cone truth table for the resulting LUT. This is FlowMap-style
//! depth-oriented mapping with a small cut budget — simple, deterministic,
//! and good enough that mapped areas track gate counts closely, which is
//! what the partition/paging experiments need.

use crate::gate::{Gate, NodeId};
use crate::graph::Netlist;
use crate::lutnet::{FlipFlop, Lut, LutIn, LutNetwork};
use crate::truth::cone_truth_table;
use std::collections::HashMap;

/// Mapper configuration.
#[derive(Debug, Clone, Copy)]
pub struct MapOptions {
    /// LUT input arity (the simulated fabric uses 4, like the XC4000's
    /// primary function generators).
    pub k: usize,
    /// Cut-set budget per node; larger explores more area/depth trade-offs.
    pub max_cuts: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions { k: 4, max_cuts: 8 }
    }
}

/// A cut: a sorted set of leaf nodes (≤ K of them).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cut {
    leaves: Vec<NodeId>,
    /// Depth of the LUT rooted here if this cut is chosen.
    depth: u32,
}

fn merge_leaves(k: usize, parts: &[&[NodeId]]) -> Option<Vec<NodeId>> {
    let mut out: Vec<NodeId> = Vec::with_capacity(k + 1);
    for part in parts {
        for &l in *part {
            if let Err(pos) = out.binary_search(&l) {
                if out.len() == k {
                    return None;
                }
                out.insert(pos, l);
            }
        }
    }
    Some(out)
}

/// Map a gate netlist to a [`LutNetwork`].
///
/// # Panics
/// Panics on internal inconsistencies (cone extraction failing for an
/// enumerated cut), which would indicate a mapper bug.
pub fn map_to_luts(net: &Netlist, opts: MapOptions) -> LutNetwork {
    assert!((1..=6).contains(&opts.k), "K must be in 1..=6");
    assert!(opts.max_cuts >= 1);
    let n = net.nodes().len();

    // ---- Phase 1: bottom-up cut enumeration with depth labeling. ----
    // `arrival[i]` = depth of the best LUT implementation rooted at i
    // (0 for leaves).
    let mut arrival = vec![0u32; n];
    let mut cuts: Vec<Vec<Cut>> = Vec::with_capacity(n);

    for i in 0..n {
        let id = NodeId(i as u32);
        let g = net.gate(id);
        let node_cuts = match g {
            // Constants fold into cones: expose an *empty* cut so they
            // never consume a LUT input.
            Gate::Const(_) => vec![Cut {
                leaves: vec![],
                depth: 0,
            }],
            // Pure leaves: only the trivial cut.
            Gate::Input { .. } | Gate::Dff { .. } => {
                vec![Cut {
                    leaves: vec![id],
                    depth: 0,
                }]
            }
            _ => {
                let fanin: Vec<NodeId> = g.comb_fanin().iter().collect();
                let mut cands: Vec<Cut> = Vec::new();
                // Cross-product of fan-in cut sets.
                match fanin.len() {
                    1 => {
                        for ca in &cuts[fanin[0].index()] {
                            if let Some(leaves) = merge_leaves(opts.k, &[&ca.leaves]) {
                                cands.push(Cut { leaves, depth: 0 });
                            }
                        }
                    }
                    2 => {
                        for ca in &cuts[fanin[0].index()] {
                            for cb in &cuts[fanin[1].index()] {
                                if let Some(leaves) =
                                    merge_leaves(opts.k, &[&ca.leaves, &cb.leaves])
                                {
                                    cands.push(Cut { leaves, depth: 0 });
                                }
                            }
                        }
                    }
                    3 => {
                        for ca in &cuts[fanin[0].index()] {
                            for cb in &cuts[fanin[1].index()] {
                                for cc in &cuts[fanin[2].index()] {
                                    if let Some(leaves) =
                                        merge_leaves(opts.k, &[&ca.leaves, &cb.leaves, &cc.leaves])
                                    {
                                        cands.push(Cut { leaves, depth: 0 });
                                    }
                                }
                            }
                        }
                    }
                    arity => unreachable!("unexpected gate arity {arity}"),
                }
                // Depth of each candidate = 1 + max leaf arrival.
                for c in &mut cands {
                    let worst = c
                        .leaves
                        .iter()
                        .map(|l| arrival[l.index()])
                        .max()
                        .unwrap_or(0);
                    c.depth = worst + 1;
                }
                // Sort by (depth, size), dedupe identical leaf sets, prune.
                cands.sort_by(|a, b| {
                    a.depth
                        .cmp(&b.depth)
                        .then(a.leaves.len().cmp(&b.leaves.len()))
                        .then(a.leaves.cmp(&b.leaves))
                });
                cands.dedup_by(|a, b| a.leaves == b.leaves);
                cands.truncate(opts.max_cuts);
                assert!(
                    !cands.is_empty(),
                    "no K-feasible cut for node {id} ({}); K too small",
                    g.kind()
                );
                arrival[i] = cands[0].depth;
                // Append the trivial cut so parents can stop here.
                cands.push(Cut {
                    leaves: vec![id],
                    depth: arrival[i],
                });
                cands
            }
        };
        cuts.push(node_cuts);
    }

    // ---- Phase 2: cover from the roots. ----
    struct Cover<'a> {
        net: &'a Netlist,
        cuts: &'a [Vec<Cut>],
        ff_index: HashMap<NodeId, u32>,
        memo: HashMap<NodeId, LutIn>,
        luts: Vec<Lut>,
    }

    impl Cover<'_> {
        fn materialize(&mut self, id: NodeId) -> LutIn {
            if let Some(&m) = self.memo.get(&id) {
                return m;
            }
            let out = match self.net.gate(id) {
                Gate::Input { bit } => LutIn::Input(bit),
                Gate::Const(c) => LutIn::Const(c),
                Gate::Dff { .. } => LutIn::Ff(self.ff_index[&id]),
                _ => {
                    // Best non-trivial cut is first (the trivial cut was
                    // appended last and never has strictly better depth).
                    let cut = self.cuts[id.index()]
                        .iter()
                        .find(|c| !(c.leaves.len() == 1 && c.leaves[0] == id))
                        .expect("gate node always has a non-trivial cut")
                        .clone();
                    let ins: Vec<LutIn> = cut.leaves.iter().map(|&l| self.materialize(l)).collect();
                    let table = cone_truth_table(self.net, id, &cut.leaves)
                        .expect("enumerated cut must cover its cone");
                    let idx = self.luts.len() as u32;
                    self.luts.push(Lut { inputs: ins, table });
                    LutIn::Lut(idx)
                }
            };
            self.memo.insert(id, out);
            out
        }
    }

    let dff_nodes = net.dff_nodes();
    let ff_index: HashMap<NodeId, u32> = dff_nodes
        .iter()
        .enumerate()
        .map(|(k, &id)| (id, k as u32))
        .collect();

    let mut cover = Cover {
        net,
        cuts: &cuts,
        ff_index,
        memo: HashMap::new(),
        luts: Vec::new(),
    };

    // Roots: every primary output and every flip-flop data input.
    let outputs: Vec<(String, LutIn)> = net
        .outputs()
        .iter()
        .map(|(name, id)| (name.clone(), cover.materialize(*id)))
        .collect();

    let ffs: Vec<FlipFlop> = dff_nodes
        .iter()
        .map(|&id| match net.gate(id) {
            Gate::Dff { d, init } => FlipFlop {
                d: cover.materialize(d),
                init,
            },
            _ => unreachable!(),
        })
        .collect();

    let mapped = LutNetwork {
        name: net.name().to_string(),
        k: opts.k,
        num_inputs: net.num_inputs(),
        luts: cover.luts,
        ffs,
        outputs,
    };
    debug_assert_eq!(mapped.validate(), Ok(()));
    mapped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Builder;
    use crate::lutnet::{lut_eval_comb, LutSimulator};
    use crate::sim::{eval_comb, Simulator};

    /// Exhaustively (≤ 12 inputs) or randomly check functional equivalence
    /// of a combinational netlist and its mapping.
    fn assert_comb_equiv(net: &Netlist, mapped: &LutNetwork) {
        let w = net.num_inputs();
        assert!(w <= 16, "test helper limited to 16 inputs");
        for v in 0..(1u64 << w) {
            let bits: Vec<bool> = (0..w).map(|i| (v >> i) & 1 == 1).collect();
            let golden = eval_comb(net, &bits);
            let got = lut_eval_comb(mapped, &bits);
            assert_eq!(golden, got, "mismatch at input {v:#b}");
        }
    }

    #[test]
    fn maps_xor_chain_into_single_lut() {
        let mut b = Builder::new("x4");
        let xs = b.inputs(4);
        let x = b.xor_tree(&xs);
        b.output("x", x);
        let net = b.finish();
        let mapped = map_to_luts(&net, MapOptions::default());
        mapped.validate().unwrap();
        assert_eq!(mapped.luts.len(), 1, "4-input parity fits one 4-LUT");
        assert_eq!(mapped.depth(), 1);
        assert_comb_equiv(&net, &mapped);
    }

    #[test]
    fn maps_wider_parity_into_tree() {
        let mut b = Builder::new("x10");
        let xs = b.inputs(10);
        let x = b.xor_tree(&xs);
        b.output("x", x);
        let net = b.finish();
        let mapped = map_to_luts(&net, MapOptions::default());
        mapped.validate().unwrap();
        assert!(mapped.luts.len() >= 3);
        assert!(mapped.depth() <= 2, "10 vars -> depth 2 in 4-LUTs");
        assert_comb_equiv(&net, &mapped);
    }

    #[test]
    fn constants_fold_into_cones() {
        let mut b = Builder::new("cf");
        let x = b.input();
        let one = b.constant(true);
        let a = b.and(x, one);
        let o = b.xor(a, one);
        b.output("o", o);
        let net = b.finish();
        let mapped = map_to_luts(&net, MapOptions::default());
        assert_eq!(mapped.luts.len(), 1);
        assert_eq!(
            mapped.luts[0].inputs.len(),
            1,
            "constant must not use a LUT pin"
        );
        assert_comb_equiv(&net, &mapped);
    }

    #[test]
    fn sequential_mapping_preserves_behaviour() {
        let net = crate::library::seq::counter("cnt4", 4);
        let mapped = map_to_luts(&net, MapOptions::default());
        mapped.validate().unwrap();
        assert_eq!(mapped.ffs.len(), 4);
        let mut gsim = Simulator::new(&net);
        let mut lsim = LutSimulator::new(&mapped);
        for step in 0..40 {
            let en = if step % 5 == 0 { 0u64 } else { u64::MAX };
            gsim.eval(&[en]);
            lsim.eval(&[en]);
            let g = gsim.outputs();
            let l = lsim.outputs(&[en]);
            assert_eq!(g, l, "cycle {step}");
            gsim.clock();
            lsim.clock(&[en]);
        }
    }

    #[test]
    fn adder_maps_equivalently() {
        let net = crate::library::arith::ripple_adder("add4", 4);
        let mapped = map_to_luts(&net, MapOptions::default());
        assert_comb_equiv(&net, &mapped);
        // Mapping must not balloon: a 4-bit adder is a handful of LUTs.
        assert!(mapped.luts.len() <= 12, "got {} luts", mapped.luts.len());
    }

    #[test]
    fn k_variants_all_equivalent() {
        let net = crate::library::arith::ripple_adder("add3", 3);
        for k in 2..=6 {
            let mapped = map_to_luts(&net, MapOptions { k, max_cuts: 8 });
            mapped.validate().unwrap();
            assert_comb_equiv(&net, &mapped);
        }
    }

    #[test]
    fn larger_k_never_deepens() {
        let mut b = Builder::new("mixed");
        let xs = b.inputs(12);
        let s1 = b.xor_tree(&xs[0..6]);
        let s2 = b.and_tree(&xs[6..12]);
        let o = b.or(s1, s2);
        b.output("o", o);
        let net = b.finish();
        let d4 = map_to_luts(&net, MapOptions { k: 4, max_cuts: 8 }).depth();
        let d6 = map_to_luts(&net, MapOptions { k: 6, max_cuts: 8 }).depth();
        assert!(d6 <= d4, "k=6 depth {d6} vs k=4 depth {d4}");
    }

    #[test]
    fn passthrough_output_needs_no_lut() {
        let mut b = Builder::new("wire");
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y);
        b.output("a", a);
        b.output("x_again", x);
        let net = b.finish();
        let mapped = map_to_luts(&net, MapOptions::default());
        assert_eq!(mapped.luts.len(), 1);
        assert_eq!(mapped.outputs[1].1, LutIn::Input(0));
    }
}
