//! Application circuit suites.
//!
//! Each [`Domain`] matches one of the paper's §5 scenarios; [`suite`]
//! compiles its circuits through the full CAD flow. Every app also has a
//! software-execution model — nanoseconds per item on the host CPU — used
//! by experiment E12's co-processor comparison. The software costs are
//! derived from the circuit's gate count and depth (a software emulation
//! of the same dataflow executes ~1 gate-equivalent per CPU ns at our
//! reference 1 GHz host, with no bit-level parallelism), which keeps the
//! hardware/software ratio tied to circuit structure rather than to magic
//! constants.

use netlist::Netlist;
use pnr::{compile_shared, CompileOptions, CompiledCircuit};
use std::sync::Arc;

/// Application domains from the paper's conclusions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Voice/image compression bank (multimedia systems).
    Multimedia,
    /// Modem/fax encoding chains (telecommunication).
    Telecom,
    /// Programmable network interface protocol engines.
    Networking,
    /// Disk-array codecs (fault-tolerant storage).
    Storage,
    /// Embedded control: testing, diagnosis, parameter tuning.
    EmbeddedControl,
}

impl Domain {
    /// All domains.
    pub const ALL: [Domain; 5] = [
        Domain::Multimedia,
        Domain::Telecom,
        Domain::Networking,
        Domain::Storage,
        Domain::EmbeddedControl,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Multimedia => "multimedia",
            Domain::Telecom => "telecom",
            Domain::Networking => "networking",
            Domain::Storage => "storage",
            Domain::EmbeddedControl => "embedded-control",
        }
    }
}

/// One compiled application kernel.
#[derive(Debug, Clone)]
pub struct App {
    /// Kernel name.
    pub name: String,
    /// Owning domain.
    pub domain: Domain,
    /// The compiled circuit, shared through the process-wide compile
    /// cache — building the same suite twice compiles each kernel once.
    pub compiled: Arc<CompiledCircuit>,
    /// Nanoseconds per processed item when executed in software.
    pub sw_ns_per_item: u64,
    /// Fabric cycles per processed item when executed on the FPGA.
    pub hw_cycles_per_item: u64,
}

impl App {
    /// Nanoseconds per item on the FPGA (excluding configuration).
    pub fn hw_ns_per_item(&self) -> u64 {
        (self.compiled.clock_ns * self.hw_cycles_per_item as f64).ceil() as u64
    }

    /// Raw kernel speed-up of hardware over software (no config cost).
    pub fn raw_speedup(&self) -> f64 {
        self.sw_ns_per_item as f64 / self.hw_ns_per_item().max(1) as f64
    }

    /// Software cost per *hardware cycle* — the price admission control's
    /// graceful degradation charges when it emulates this kernel instead
    /// of configuring it (the e12 co-processor model re-expressed in the
    /// unit `Op::FpgaRun` counts in).
    pub fn sw_ns_per_cycle(&self) -> u64 {
        (self.sw_ns_per_item / self.hw_cycles_per_item.max(1)).max(1)
    }
}

/// A domain's circuit suite.
#[derive(Debug, Clone)]
pub struct Suite {
    /// The domain.
    pub domain: Domain,
    /// Compiled kernels.
    pub apps: Vec<App>,
}

/// Software cost model: one gate-equivalent per host-CPU nanosecond, with
/// the netlist's full gate count executed per item (software evaluates the
/// whole dataflow serially, bit by bit).
fn sw_model(net: &Netlist) -> u64 {
    let s = net.stats();
    (s.gates + s.dffs) as u64
}

fn mk_app(domain: Domain, net: Netlist, hw_cycles_per_item: u64, opts: CompileOptions) -> App {
    let sw = sw_model(&net);
    let compiled = compile_shared(&net, opts).expect("suite circuit must compile");
    App {
        name: compiled.name().to_string(),
        domain,
        compiled,
        sw_ns_per_item: sw,
        hw_cycles_per_item,
    }
}

/// Build the suite for a domain; `max_height` should be the target
/// device's row count so circuits fit column partitions.
pub fn suite(domain: Domain, max_height: u32) -> Suite {
    use netlist::library::*;
    let o = CompileOptions {
        max_height,
        full_height: true,
        ..Default::default()
    };
    let apps = match domain {
        // Codec bank: filters and transforms; each standard = one kernel.
        Domain::Multimedia => vec![
            mk_app(domain, dsp::fir("fir-voice", 8, &[1, 3, 5, 3, 1]), 1, o),
            mk_app(domain, dsp::fir("fir-image", 8, &[2, 4, 2]), 1, o),
            mk_app(domain, dsp::moving_sum("smoother", 8, 4), 1, o),
            mk_app(domain, arith::array_multiplier("dct-mac", 6), 1, o),
        ],
        // Modem/fax chains: scramblers, CRC, constellation mapping.
        Domain::Telecom => vec![
            mk_app(
                domain,
                seq::lfsr("scrambler", 16, 0b1101_0000_0000_1000),
                1,
                o,
            ),
            mk_app(
                domain,
                codes::crc_comb("crc16", codes::CRC16_CCITT, 16, 16),
                1,
                o,
            ),
            mk_app(domain, codes::gray_encode("qam-map", 6), 1, o),
            mk_app(domain, codes::hamming74_encode("fec-enc"), 1, o),
        ],
        // NIC engines: checksums, classification, framing.
        Domain::Networking => vec![
            mk_app(domain, codes::crc_comb("fcs32", 0x04C1_1DB7, 32, 16), 1, o),
            mk_app(domain, logic::priority_encoder("classifier", 16), 1, o),
            mk_app(domain, seq::pattern_fsm("delimiter"), 1, o),
            mk_app(domain, logic::popcount("hamming-wt", 16), 1, o),
        ],
        // Disk arrays: parity/ECC generation across stripes.
        Domain::Storage => vec![
            mk_app(domain, logic::parity("stripe-parity", 16), 1, o),
            mk_app(domain, codes::hamming74_decode("ecc-dec"), 1, o),
            mk_app(domain, logic::majority("vote3", 5), 1, o),
            mk_app(
                domain,
                codes::crc_comb("sector-crc", codes::CRC8, 8, 16),
                1,
                o,
            ),
        ],
        // Embedded control: diagnosis and tuning kernels.
        Domain::EmbeddedControl => vec![
            mk_app(domain, alu::alu("tuner-alu", 8), 1, o),
            mk_app(domain, logic::comparator("threshold", 8), 1, o),
            mk_app(domain, seq::counter("watchdog", 12), 1, o),
            mk_app(domain, seq::accumulator("integrator", 10), 1, o),
        ],
    };
    Suite { domain, apps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suites_compile() {
        for d in Domain::ALL {
            let s = suite(d, 24);
            assert_eq!(s.apps.len(), 4, "{}", d.name());
            for a in &s.apps {
                assert!(a.compiled.blocks() > 0, "{}", a.name);
                assert!(a.sw_ns_per_item > 0);
                assert!(a.hw_ns_per_item() > 0);
            }
        }
    }

    #[test]
    fn hardware_beats_software_on_compute_heavy_kernels() {
        // The premise of the co-processor model: FPGA kernels beat serial
        // software per item (before configuration overheads) — for kernels
        // with enough logic to amortize a fabric clock. Trivial kernels
        // (e.g. a 6-bit Gray mapper) legitimately do not, which is exactly
        // the "crossover" experiment E12 demonstrates.
        for d in Domain::ALL {
            let s = suite(d, 24);
            let mean: f64 = s.apps.iter().map(App::raw_speedup).sum::<f64>() / s.apps.len() as f64;
            assert!(mean > 1.0, "{}: mean raw speedup {mean}", d.name());
            let best = s.apps.iter().map(App::raw_speedup).fold(0.0, f64::max);
            assert!(best > 1.5, "{}: best raw speedup {best}", d.name());
        }
    }

    #[test]
    fn suites_fit_mid_size_device() {
        let spec = fpga::device::part("VF400");
        for d in Domain::ALL {
            let s = suite(d, spec.rows);
            for a in &s.apps {
                let (w, h) = a.compiled.shape();
                assert!(
                    w <= spec.cols && h <= spec.rows,
                    "{} is {}x{}",
                    a.name,
                    w,
                    h
                );
            }
        }
    }
}
