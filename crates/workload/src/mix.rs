//! Task-mix generators.
//!
//! Builds [`vfpga::TaskSpec`] sets over a compiled circuit library:
//! Poisson arrivals with alternating CPU/FPGA bursts (the time-shared
//! scenario) and periodic task sets (the real-time scenario the abstract
//! mentions).

use fsim::{SimDuration, SimRng, SimTime};
use vfpga::circuit::CircuitLib;
use vfpga::{CircuitId, Op, TaskSpec};

/// Parameters for the Poisson mix.
#[derive(Debug, Clone, Copy)]
pub struct MixParams {
    /// Number of tasks.
    pub tasks: usize,
    /// Mean inter-arrival time.
    pub mean_interarrival: SimDuration,
    /// CPU burst mean (exponential).
    pub mean_cpu_burst: SimDuration,
    /// FPGA bursts per task.
    pub fpga_ops_per_task: usize,
    /// Cycles per FPGA burst (uniform in `[lo, hi]`).
    pub cycles: (u64, u64),
}

impl Default for MixParams {
    fn default() -> Self {
        MixParams {
            tasks: 8,
            mean_interarrival: SimDuration::from_millis(5),
            mean_cpu_burst: SimDuration::from_millis(2),
            fpga_ops_per_task: 3,
            cycles: (10_000, 100_000),
        }
    }
}

/// Poisson-arrival tasks, each alternating CPU bursts with FPGA runs of a
/// circuit drawn (uniformly) from `circuits`.
pub fn poisson_tasks(
    params: &MixParams,
    circuits: &[CircuitId],
    rng: &mut SimRng,
) -> Vec<TaskSpec> {
    assert!(!circuits.is_empty(), "need at least one circuit");
    let mut specs = Vec::with_capacity(params.tasks);
    let mut at = SimTime::ZERO;
    for i in 0..params.tasks {
        at += SimDuration::from_secs_f64(rng.exp(params.mean_interarrival.as_secs_f64()));
        let mut ops = Vec::new();
        for k in 0..params.fpga_ops_per_task {
            ops.push(Op::Cpu(SimDuration::from_secs_f64(
                rng.exp(params.mean_cpu_burst.as_secs_f64()).max(1e-6),
            )));
            let cid = *rng.choose(circuits);
            let cycles = rng.range_u64(params.cycles.0, params.cycles.1);
            ops.push(Op::FpgaRun {
                circuit: cid,
                cycles,
            });
            if k + 1 == params.fpga_ops_per_task {
                ops.push(Op::Cpu(SimDuration::from_secs_f64(
                    rng.exp(params.mean_cpu_burst.as_secs_f64()).max(1e-6),
                )));
            }
        }
        specs.push(TaskSpec::new(format!("task{i}"), at, ops));
    }
    specs
}

/// Parameters for the multi-tenant overload mix (experiment E17).
#[derive(Debug, Clone, Copy)]
pub struct TenantMixParams {
    /// The underlying Poisson mix.
    pub base: MixParams,
    /// Tenants; tasks are assigned round-robin (task `i` → `i % tenants`).
    pub tenants: u32,
    /// Relative completion deadline stamped on every task (miss accounting
    /// only; nothing is enforced). `None` stamps no deadlines.
    pub deadline: Option<SimDuration>,
    /// The first `hang_tasks` tasks get their first FPGA op marked as
    /// hanging (done signal never rises) — the deliberately misbehaving
    /// application only a watchdog can defend against.
    pub hang_tasks: usize,
    /// Half-width of a uniform jitter applied to each task's deadline,
    /// as a fraction of `deadline` (task `i` gets `deadline * u`,
    /// `u ~ U[1 - spread, 1 + spread]`). Zero stamps the uniform
    /// deadline unchanged. The jitter draws from an RNG derived from the
    /// caller's (never from the caller's own stream), and only when the
    /// spread is nonzero — mixes generated before this knob existed are
    /// bit-for-bit unchanged.
    pub deadline_spread: f64,
    /// Stamp each tenant with a device-affinity hint for fleet placement:
    /// tenant `t` prefers device `t % affinity_devices`. Zero stamps no
    /// hints — mixes generated before this knob existed are bit-for-bit
    /// unchanged, and single-device systems ignore hints entirely.
    pub affinity_devices: u32,
}

impl Default for TenantMixParams {
    fn default() -> Self {
        TenantMixParams {
            base: MixParams::default(),
            tenants: 2,
            deadline: None,
            hang_tasks: 0,
            deadline_spread: 0.0,
            affinity_devices: 0,
        }
    }
}

/// Tenant-tagged Poisson mix: the [`poisson_tasks`] arrival process with
/// round-robin tenant ids, an optional uniform relative deadline, and the
/// first `hang_tasks` tasks carrying a hanging first FPGA op. Identical
/// seeds produce identical specs; with `tenants: 1`, `deadline: None`,
/// `hang_tasks: 0` the specs differ from [`poisson_tasks`] only in name.
pub fn tenant_tasks(
    params: &TenantMixParams,
    circuits: &[CircuitId],
    rng: &mut SimRng,
) -> Vec<TaskSpec> {
    assert!(params.tenants >= 1, "need at least one tenant");
    assert!(
        params.hang_tasks <= params.base.tasks,
        "more hanging tasks than tasks"
    );
    assert!(
        (0.0..1.0).contains(&params.deadline_spread),
        "deadline_spread must be in [0, 1)"
    );
    let mut dl_rng = rng.derive(0xD11E);
    let specs = poisson_tasks(&params.base, circuits, rng);
    specs
        .into_iter()
        .enumerate()
        .map(|(i, mut s)| {
            let tenant = i as u32 % params.tenants;
            s.name = format!("tn{tenant}-task{i}");
            s = s.with_tenant(tenant);
            if params.affinity_devices > 0 {
                s = s.with_affinity(tenant % params.affinity_devices);
            }
            if let Some(d) = params.deadline {
                let d = if params.deadline_spread > 0.0 {
                    let u =
                        1.0 - params.deadline_spread + 2.0 * params.deadline_spread * dl_rng.f64();
                    SimDuration::from_secs_f64(d.as_secs_f64() * u)
                } else {
                    d
                };
                s = s.with_deadline(d);
            }
            if i < params.hang_tasks {
                let first_fpga = s
                    .ops
                    .iter()
                    .position(|op| matches!(op, Op::FpgaRun { .. }))
                    .expect("poisson tasks always carry FPGA ops");
                s = s.with_hang_op(first_fpga);
            }
            s
        })
        .collect()
}

/// Register a circuit family sharing structure: the base plus `variants`
/// circuits derived by rewriting a fraction `1 - similarity` of the
/// base's LUT columns ([`pnr::mutate_tables`] — column-clustered, so the
/// frame-level diff against the base stays sparse). `similarity` is the
/// fraction of configuration columns a variant shares with the base:
/// `1.0` makes every variant bit-identical to it (a delta download of
/// zero frames), `0.0` rewrites every column (delta degenerates to a
/// full download). Returns the family's ids, base first. Shape, timing,
/// and I/O are preserved, so members are drop-in replacements for one
/// another in any task mix — exactly the workload where successive swaps
/// onto the same columns share most of their frames.
pub fn variant_family(
    lib: &mut CircuitLib,
    base: pnr::CompiledCircuit,
    variants: usize,
    similarity: f64,
    seed: u64,
) -> Vec<CircuitId> {
    assert!(
        (0.0..=1.0).contains(&similarity),
        "similarity must be in [0, 1]"
    );
    // Each variant mutates the base independently (not the previous
    // variant), so every family pair stays `similarity`-close.
    let mutants: Vec<_> = (0..variants)
        .map(|v| pnr::mutate_tables(&base, 1.0 - similarity, seed.wrapping_add(v as u64 + 1)))
        .collect();
    let mut ids = Vec::with_capacity(variants + 1);
    ids.push(lib.register_compiled(base));
    ids.extend(mutants.into_iter().map(|m| lib.register_compiled(m)));
    ids
}

/// Periodic task set: `jobs` releases of each task at its period, each job
/// one CPU burst plus one FPGA run of the task's dedicated circuit
/// (modeled as separate TaskSpecs per job, arrival = release time).
pub fn periodic_tasks(
    periods: &[(CircuitId, SimDuration)],
    jobs: usize,
    cpu_burst: SimDuration,
    cycles: u64,
) -> Vec<TaskSpec> {
    let mut specs = Vec::new();
    for (ti, &(cid, period)) in periods.iter().enumerate() {
        for j in 0..jobs {
            let arrival = SimTime::ZERO + period * j as u64;
            specs.push(
                TaskSpec::new(
                    format!("p{ti}-job{j}"),
                    arrival,
                    vec![
                        Op::Cpu(cpu_burst),
                        Op::FpgaRun {
                            circuit: cid,
                            cycles,
                        },
                    ],
                )
                .with_priority((periods.len() - ti) as u8),
            );
        }
    }
    specs.sort_by_key(|s| s.arrival);
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cids(n: u32) -> Vec<CircuitId> {
        (0..n).map(CircuitId).collect()
    }

    #[test]
    fn poisson_mix_shape() {
        let mut rng = SimRng::new(1);
        let specs = poisson_tasks(&MixParams::default(), &cids(3), &mut rng);
        assert_eq!(specs.len(), 8);
        // Arrivals are nondecreasing.
        for w in specs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for s in &specs {
            let fpga_ops = s
                .ops
                .iter()
                .filter(|o| matches!(o, Op::FpgaRun { .. }))
                .count();
            assert_eq!(fpga_ops, 3);
            assert!(s.cpu_demand() > SimDuration::ZERO);
            for op in &s.ops {
                if let Op::FpgaRun { circuit, cycles } = op {
                    assert!(circuit.0 < 3);
                    assert!((10_000..=100_000).contains(cycles));
                }
            }
        }
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = poisson_tasks(&MixParams::default(), &cids(3), &mut SimRng::new(7));
        let b = poisson_tasks(&MixParams::default(), &cids(3), &mut SimRng::new(7));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.ops, y.ops);
        }
    }

    #[test]
    fn tenant_mix_tags_deadlines_and_hangs() {
        let params = TenantMixParams {
            base: MixParams::default(),
            tenants: 3,
            deadline: Some(SimDuration::from_millis(250)),
            hang_tasks: 2,
            ..Default::default()
        };
        let specs = tenant_tasks(&params, &cids(3), &mut SimRng::new(9));
        assert_eq!(specs.len(), 8);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.tenant, i as u32 % 3);
            assert_eq!(s.deadline, Some(SimDuration::from_millis(250)));
            assert!(s.name.starts_with(&format!("tn{}-", s.tenant)));
            if i < 2 {
                let idx = s.hang_op.expect("first two tasks hang");
                assert!(matches!(s.ops[idx], Op::FpgaRun { .. }));
            } else {
                assert_eq!(s.hang_op, None);
            }
        }
        // The arrival process is untouched: same seed, same arrivals as
        // the plain Poisson mix.
        let plain = poisson_tasks(&MixParams::default(), &cids(3), &mut SimRng::new(9));
        for (a, b) in specs.iter().zip(&plain) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.ops, b.ops);
        }
    }

    #[test]
    fn deadline_spread_jitters_without_touching_arrivals() {
        let params = TenantMixParams {
            base: MixParams::default(),
            tenants: 2,
            deadline: Some(SimDuration::from_millis(100)),
            hang_tasks: 0,
            deadline_spread: 0.5,
            ..Default::default()
        };
        let specs = tenant_tasks(&params, &cids(3), &mut SimRng::new(9));
        let lo = SimDuration::from_millis(50);
        let hi = SimDuration::from_millis(150);
        let mut distinct = std::collections::BTreeSet::new();
        for s in &specs {
            let d = s.deadline.expect("deadline stamped");
            assert!(d >= lo && d <= hi, "jittered deadline out of band: {d:?}");
            distinct.insert(d);
        }
        assert!(distinct.len() > 1, "spread 0.5 never varied the deadline");
        // The arrival/op stream is untouched by the jitter draws: same
        // seed, same specs as the spread-free mix, deadlines aside.
        let plain = tenant_tasks(
            &TenantMixParams {
                deadline_spread: 0.0,
                ..params
            },
            &cids(3),
            &mut SimRng::new(9),
        );
        for (a, b) in specs.iter().zip(&plain) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.ops, b.ops);
            assert_eq!(b.deadline, Some(SimDuration::from_millis(100)));
        }
        // And per-seed determinism holds for the jitter itself.
        let again = tenant_tasks(&params, &cids(3), &mut SimRng::new(9));
        for (a, b) in specs.iter().zip(&again) {
            assert_eq!(a.deadline, b.deadline);
        }
    }

    #[test]
    fn variant_families_scale_frame_sharing_with_similarity() {
        use pnr::{compile, CompileOptions, PinAssignment};
        let base = compile(
            &netlist::library::arith::array_multiplier("fam", 4),
            CompileOptions::default(),
        )
        .unwrap();
        let emit = |lib: &CircuitLib, id: CircuitId| {
            let c = &lib.get(id).compiled;
            let pins = PinAssignment::contiguous(
                c.placed.circuit.num_inputs,
                c.placed.circuit.outputs.len(),
            );
            pnr::emit_bitstream(&c.placed, (0, 0), &pins, false)
        };
        let changed_at = |similarity: f64| {
            let mut lib = CircuitLib::new();
            let ids = variant_family(&mut lib, base.clone(), 3, similarity, 42);
            assert_eq!(ids.len(), 4);
            let shape = lib.get(ids[0]).shape();
            for w in ids.windows(2) {
                // Drop-in replacements: same footprint, every pair.
                assert_eq!(lib.get(w[1]).shape(), shape);
            }
            let b = emit(&lib, ids[0]);
            ids[1..]
                .iter()
                .map(|&v| fpga::Bitstream::diff(&b, &emit(&lib, v)).changed_frames)
                .max()
                .unwrap()
        };
        let width = base.placed.width as usize;
        assert_eq!(changed_at(1.0), 0, "similarity 1 must be bit-identical");
        let half = changed_at(0.5);
        assert!(half > 0 && half <= width.div_ceil(2));
        assert!(
            changed_at(0.0) >= half,
            "lower similarity cannot shrink the diff"
        );
        // Determinism: the same seed yields the same family.
        let mut lib_a = CircuitLib::new();
        let mut lib_b = CircuitLib::new();
        let a = variant_family(&mut lib_a, base.clone(), 2, 0.5, 7);
        let b = variant_family(&mut lib_b, base.clone(), 2, 0.5, 7);
        for (&x, &y) in a.iter().zip(&b) {
            assert_eq!(emit(&lib_a, x).frames, emit(&lib_b, y).frames);
        }
    }

    #[test]
    fn periodic_releases() {
        let periods = vec![
            (CircuitId(0), SimDuration::from_millis(10)),
            (CircuitId(1), SimDuration::from_millis(25)),
        ];
        let specs = periodic_tasks(&periods, 3, SimDuration::from_micros(100), 1000);
        assert_eq!(specs.len(), 6);
        let t0_arrivals: Vec<_> = specs
            .iter()
            .filter(|s| s.name.starts_with("p0"))
            .map(|s| s.arrival)
            .collect();
        assert_eq!(
            t0_arrivals,
            vec![
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_millis(10),
                SimTime::ZERO + SimDuration::from_millis(20)
            ]
        );
        // Shorter period = higher priority (rate monotonic).
        let p0 = specs.iter().find(|s| s.name.starts_with("p0")).unwrap();
        let p1 = specs.iter().find(|s| s.name.starts_with("p1")).unwrap();
        assert!(p0.priority > p1.priority);
    }

    #[test]
    fn affinity_hints_are_stamped_without_touching_the_mix() {
        let params = TenantMixParams {
            base: MixParams::default(),
            tenants: 4,
            affinity_devices: 2,
            ..Default::default()
        };
        let specs = tenant_tasks(&params, &cids(3), &mut SimRng::new(9));
        for s in &specs {
            assert_eq!(s.affinity, Some(s.tenant % 2));
        }
        // The knob draws nothing and touches nothing else: the hint-free
        // mix from the same seed is identical, affinity aside.
        let plain = tenant_tasks(
            &TenantMixParams {
                affinity_devices: 0,
                ..params
            },
            &cids(3),
            &mut SimRng::new(9),
        );
        for (a, b) in specs.iter().zip(&plain) {
            assert_eq!(b.affinity, None);
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.name, b.name);
        }
    }
}
