//! # workload — application suites and task-mix generators
//!
//! The paper motivates VFPGAs with concrete application domains (§5):
//! multimedia codec banks, telecom modems/encoders, network interfaces,
//! storage arrays, and embedded control. This crate turns those into
//! runnable material for the experiments:
//!
//! * [`apps`] — named circuit suites per domain, compiled through the full
//!   `pnr` flow, with software-execution time models for the co-processor
//!   comparison (E12),
//! * [`mix`] — task-set generators: Poisson arrivals, periodic real-time
//!   tasks, and parameterized CPU/FPGA burst mixes.

pub mod apps;
pub mod mix;

pub use apps::{suite, App, Domain, Suite};
pub use mix::{
    periodic_tasks, poisson_tasks, tenant_tasks, variant_family, MixParams, TenantMixParams,
};
