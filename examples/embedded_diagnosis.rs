//! Embedded-control scenario (paper §5): "execution of different
//! non-frequent functions (e.g., periodic system testing and diagnosis as
//! well as tuning of the operating parameters) can benefit from the
//! performance achieved by FPGAs."
//!
//! A rate-monotonic periodic task set — control loop, watchdog, diagnosis,
//! tuner — shares one small FPGA under priority scheduling with column
//! partitions.
//!
//! ```sh
//! cargo run --example embedded_diagnosis
//! ```

use fpga::{ConfigPort, ConfigTiming};
use fsim::SimDuration;
use std::sync::Arc;
use vfpga::manager::partition::{PartitionManager, PartitionMode};
use vfpga::{CircuitLib, PreemptAction, PriorityScheduler, System, SystemConfig};
use workload::{periodic_tasks, suite, Domain};

fn main() {
    let spec = fpga::device::part("VF200");
    let timing = ConfigTiming {
        spec,
        port: ConfigPort::SerialFast,
    };

    let mut lib = CircuitLib::new();
    let mut ids = Vec::new();
    for app in suite(Domain::EmbeddedControl, spec.rows).apps {
        println!(
            "kernel '{}': {} CLBs, {} state bits",
            app.name,
            app.compiled.blocks(),
            app.compiled.state_bits()
        );
        ids.push(lib.register_shared(app.compiled));
    }
    let lib = Arc::new(lib);

    // Rate-monotonic periods: control fastest, diagnosis slowest.
    let periods = vec![
        (ids[0], SimDuration::from_millis(5)),  // tuner ALU
        (ids[1], SimDuration::from_millis(10)), // threshold comparator
        (ids[2], SimDuration::from_millis(20)), // watchdog counter
        (ids[3], SimDuration::from_millis(40)), // integrator/diagnosis
    ];
    let specs = periodic_tasks(&periods, 8, SimDuration::from_micros(200), 20_000);
    println!(
        "\n{} periodic jobs released over {} hyperperiods\n",
        specs.len(),
        8
    );

    let r = System::new(
        lib.clone(),
        PartitionManager::new(
            lib.clone(),
            timing,
            PartitionMode::Variable,
            PreemptAction::SaveRestore,
        )
        .unwrap(),
        PriorityScheduler::new(Some(SimDuration::from_millis(1))),
        SystemConfig {
            preempt: PreemptAction::SaveRestore,
            ..Default::default()
        },
        specs,
    )
    .run()
    .unwrap();

    // Deadline check: each job should finish before its period elapses.
    let mut missed = 0;
    for (ti, &(_, period)) in periods.iter().enumerate() {
        for job in r
            .tasks
            .iter()
            .filter(|t| t.name.starts_with(&format!("p{ti}-")))
        {
            if job.turnaround() > period {
                missed += 1;
                println!(
                    "deadline miss: {} turnaround {:.2} ms > period {:.2} ms",
                    job.name,
                    job.turnaround().as_millis_f64(),
                    period.as_millis_f64()
                );
            }
        }
    }
    println!(
        "makespan {:.1} ms, downloads {}, deadline misses {missed}/{}",
        r.makespan.as_millis_f64(),
        r.manager_stats.downloads,
        r.tasks.len()
    );
    println!(
        "after warm-up every kernel is resident in its partition: {} hits vs {} misses",
        r.manager_stats.hits, r.manager_stats.misses
    );
}
