//! Networking scenario (paper §5): "high-performance programmable
//! interfaces for networking … can be realized with different protocols
//! and standards activated according to the task running on the
//! processor."
//!
//! Protocol engines (CRC, classifier, framer, …) are opened through the
//! §3-style system-call API, pinned through the pin-assignment table, and
//! multiplexed on a mid-size device under partitioning.
//!
//! ```sh
//! cargo run --example network_interface
//! ```

use fpga::{ConfigPort, ConfigTiming};
use fsim::{SimDuration, SimRng, SimTime};
use std::sync::Arc;
use vfpga::iomux::{mux_plan, PinTable};
use vfpga::manager::partition::{PartitionManager, PartitionMode};
use vfpga::{OsInterface, PreemptAction, RoundRobinScheduler, System, SystemConfig};
use workload::{suite, Domain};

fn main() {
    let spec = fpga::device::part("VF400");

    // fpga_open each protocol engine; the OS validates area and pins.
    let mut os = OsInterface::new(spec);
    let mut handles = Vec::new();
    for app in suite(Domain::Networking, spec.rows).apps {
        let io = app.compiled.io_count();
        let h = os.open(app.compiled).expect("engine fits the device");
        println!(
            "opened engine '{}' as handle {:?} ({io} pins)",
            app.name, h.0
        );
        handles.push(h);
    }

    // Packet bursts: each flow selects its protocol engine.
    let mut rng = SimRng::new(0xBEEF);
    let mut specs = Vec::new();
    let mut at = SimTime::ZERO;
    for flow in 0..30 {
        at += SimDuration::from_micros(rng.range_u64(100, 1_500));
        let h = *rng.choose(&handles);
        specs.push(
            os.program(format!("flow{flow}"), at)
                .compute(SimDuration::from_micros(150)) // header parse
                .fpga(h, rng.range_u64(10_000, 60_000)) // payload processing
                .compute(SimDuration::from_micros(50)) // hand-off
                .build()
                .expect("non-empty program"),
        );
    }

    // Pin budget check: can all engines keep their pins bound at once?
    let lib = Arc::new(os.into_lib());
    let mut pins = PinTable::new(spec.io_pins);
    let mut all_bound = true;
    for (k, h) in handles.iter().enumerate() {
        let need = lib.get(h.0).io_count() as u32;
        if pins.bind(k as u32, need).is_none() {
            all_bound = false;
            let plan = mux_plan(need, pins.free_pins().max(1)).expect("nonzero pins");
            println!(
                "engine {k}: {need} pins won't bind ({} free) — TDM fallback: {} frames, {:.0}% throughput",
                pins.free_pins(),
                plan.frames,
                100.0 * plan.throughput_factor()
            );
        }
    }
    if all_bound {
        println!(
            "\nall engines hold their pins concurrently ({} spare)",
            pins.free_pins()
        );
    }

    // Run the flows under column partitioning.
    let timing = ConfigTiming {
        spec,
        port: ConfigPort::SerialFast,
    };
    let r = System::new(
        lib.clone(),
        PartitionManager::new(
            lib,
            timing,
            PartitionMode::Variable,
            PreemptAction::SaveRestore,
        )
        .unwrap(),
        RoundRobinScheduler::new(SimDuration::from_millis(2)),
        SystemConfig {
            preempt: PreemptAction::SaveRestore,
            ..Default::default()
        },
        specs,
    )
    .run()
    .unwrap();
    println!(
        "\n30 flows in {:.1} ms; {} engine downloads, hit rate {:.0}%, overhead {:.1}%",
        r.makespan.as_millis_f64(),
        r.manager_stats.downloads,
        100.0 * r.manager_stats.hits as f64
            / (r.manager_stats.hits + r.manager_stats.misses) as f64,
        100.0 * r.overhead_fraction()
    );
}
