//! Quickstart: compile a circuit, download it to the simulated FPGA, run
//! it on the fabric, and read back its state.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pnr::{compile, emit_bitstream, CompileOptions, PinAssignment};
use std::collections::HashMap;

fn main() {
    // 1. A circuit from the library: an 8-bit ripple adder.
    let net = netlist::library::arith::ripple_adder("adder8", 8);
    println!("netlist: {:?}", net.stats());

    // 2. Compile: map to 4-LUTs, pack into CLBs, place, estimate timing.
    let compiled = compile(&net, CompileOptions::default()).expect("fits");
    println!(
        "compiled: {} CLBs in a {:?} region, critical path {:.1} ns, clock {:.1} ns",
        compiled.blocks(),
        compiled.shape(),
        compiled.crit_path_ns,
        compiled.clock_ns
    );

    // 3. Emit a partial bitstream at origin (2, 2) with contiguous pins.
    let pins = PinAssignment::contiguous(net.num_inputs(), net.outputs().len());
    let bs = emit_bitstream(&compiled.placed, (2, 2), &pins, false);
    println!(
        "bitstream: {} frames, crc ok = {}",
        bs.frame_count(),
        bs.crc_ok()
    );

    // 4. Download into a VF400 over the fast serial port.
    let mut dev = fpga::Device::new(fpga::device::part("VF400"), fpga::ConfigPort::SerialFast);
    let dl = dev.apply(&bs).expect("clean download");
    println!("download took {dl} of simulated time");

    // 5. Execute on the fabric: 25 + 17.
    let mut view = fpga::FabricView::resolve(&dev, dev.spec().full_rect()).expect("resolves");
    let (a, b) = (25u64, 17u64);
    let mut pinvals: HashMap<u32, u64> = HashMap::new();
    for i in 0..8 {
        pinvals.insert(pins.inputs[i], (a >> i) & 1);
        pinvals.insert(pins.inputs[8 + i], (b >> i) & 1);
    }
    view.eval(&dev, &pinvals);
    let mut sum = 0u64;
    for (i, &p) in pins.outputs.iter().enumerate().take(8) {
        sum |= (view.output(&dev, p) & 1) << i;
    }
    println!("fabric says {a} + {b} = {sum}");
    assert_eq!(sum, a + b);

    // 6. Readback (the paper's observability requirement) — an adder has
    // no flip-flops, so the interesting case is a sequential circuit:
    let lfsr = netlist::library::seq::lfsr("lfsr8", 8, 0b1011_1000);
    let c2 = compile(&lfsr, CompileOptions::default()).expect("fits");
    let p2 = PinAssignment::contiguous(0, 8);
    let bs2 = emit_bitstream(&c2.placed, (12, 2), &p2, false);
    dev.apply(&bs2).expect("second circuit coexists");
    let region = fpga::Rect::new(12, 2, c2.placed.width, c2.placed.height);
    let mut v2 = fpga::FabricView::resolve(&dev, region).expect("resolves");
    for _ in 0..5 {
        v2.step(&mut dev, &HashMap::new());
    }
    let (state, t) = dev.readback_region(&region);
    let live: usize = state.iter().filter(|&&w| w & 1 == 1).count();
    println!(
        "after 5 cycles: readback of {} CLBs in {t}, {live} flip-flops set",
        state.len()
    );
}
