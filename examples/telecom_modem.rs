//! Telecom scenario (paper §5): "modems, faxes, switching systems … can
//! adapt their operating mode changing the compression and encoding
//! algorithms according to the partners involved in the communication."
//!
//! Each incoming call negotiates an encoding chain; the modem's VFPGA
//! swaps the matching scrambler/CRC/mapper in. Compares whole-device
//! dynamic loading against column partitioning for the same call log.
//!
//! ```sh
//! cargo run --example telecom_modem
//! ```

use fpga::{ConfigPort, ConfigTiming};
use fsim::{SimDuration, SimRng, SimTime};
use std::sync::Arc;
use vfpga::manager::dynload::DynLoadManager;
use vfpga::manager::partition::{PartitionManager, PartitionMode};
use vfpga::{
    CircuitLib, Op, PreemptAction, Report, RoundRobinScheduler, System, SystemConfig, TaskSpec,
};
use workload::{suite, Domain};

fn call_log(lib: &CircuitLib, ids: &[vfpga::CircuitId], seed: u64) -> Vec<TaskSpec> {
    let _ = lib;
    let mut rng = SimRng::new(seed);
    let mut specs = Vec::new();
    let mut at = SimTime::ZERO;
    for call in 0..25 {
        at += SimDuration::from_millis(rng.range_u64(1, 12));
        // Each call picks a partner-dependent encoding chain: one or two
        // kernels from the telecom suite.
        let a = *rng.choose(ids);
        let mut ops = vec![
            Op::Cpu(SimDuration::from_micros(500)), // call setup
            Op::FpgaRun {
                circuit: a,
                cycles: rng.range_u64(50_000, 300_000),
            },
        ];
        if rng.chance(0.5) {
            let b = *rng.choose(ids);
            ops.push(Op::Cpu(SimDuration::from_micros(200)));
            ops.push(Op::FpgaRun {
                circuit: b,
                cycles: rng.range_u64(20_000, 100_000),
            });
        }
        specs.push(TaskSpec::new(format!("call{call}"), at, ops));
    }
    specs
}

fn describe(label: &str, r: &Report) {
    println!(
        "{label:<22} makespan {:>8.1} ms | mean wait {:>7.2} ms | downloads {:>3} | overhead {:>5.1}%",
        r.makespan.as_millis_f64(),
        r.mean_waiting_s() * 1e3,
        r.manager_stats.downloads,
        100.0 * r.overhead_fraction()
    );
}

fn main() {
    let spec = fpga::device::part("VF400");
    let timing = ConfigTiming {
        spec,
        port: ConfigPort::SerialFast,
    };

    let mut lib = CircuitLib::new();
    let mut ids = Vec::new();
    for app in suite(Domain::Telecom, spec.rows).apps {
        println!("kernel '{}': {} CLBs", app.name, app.compiled.blocks());
        ids.push(lib.register_shared(app.compiled));
    }
    let lib = Arc::new(lib);
    let specs = call_log(&lib, &ids, 0xCA11);
    println!("\n25 calls, encoding chains drawn per partner:\n");

    let dynload = System::new(
        lib.clone(),
        DynLoadManager::new(lib.clone(), timing, PreemptAction::WaitCompletion),
        RoundRobinScheduler::new(SimDuration::from_millis(5)),
        SystemConfig::default(),
        specs.clone(),
    )
    .run()
    .unwrap();
    describe("whole-device dynload", &dynload);

    let partition = System::new(
        lib.clone(),
        PartitionManager::new(
            lib.clone(),
            timing,
            PartitionMode::Variable,
            PreemptAction::SaveRestore,
        )
        .unwrap(),
        RoundRobinScheduler::new(SimDuration::from_millis(5)),
        SystemConfig {
            preempt: PreemptAction::SaveRestore,
            ..Default::default()
        },
        specs,
    )
    .run()
    .unwrap();
    describe("column partitions", &partition);

    println!(
        "\npartitioning removed {} of {} downloads ({}x fewer).",
        dynload.manager_stats.downloads - partition.manager_stats.downloads,
        dynload.manager_stats.downloads,
        dynload.manager_stats.downloads / partition.manager_stats.downloads.max(1)
    );
}
