//! Multimedia scenario (paper §5): "multimedia systems can benefit from
//! the use of VFPGA implementing different voice and image
//! compression/decompression algorithms in order to accommodate different
//! standards efficiently on a limited-size FPGA."
//!
//! A stream of codec jobs — most using the dominant standard, some using
//! rare ones — runs on a small device under the overlay manager: the
//! dominant codec is permanently resident, rare ones share the overlay
//! area.
//!
//! ```sh
//! cargo run --example multimedia_codecs
//! ```

use fpga::{ConfigPort, ConfigTiming};
use fsim::rng::Zipf;
use fsim::{SimDuration, SimRng, SimTime};
use std::sync::Arc;
use vfpga::manager::overlay::{OverlayManager, Replacement};
use vfpga::{CircuitLib, Op, PreemptAction, RoundRobinScheduler, System, SystemConfig, TaskSpec};
use workload::{suite, Domain};

fn main() {
    let spec = fpga::device::part("VF400");
    let timing = ConfigTiming {
        spec,
        port: ConfigPort::SerialFast,
    };

    // Register the codec bank.
    let mut lib = CircuitLib::new();
    let mut ids = Vec::new();
    for app in suite(Domain::Multimedia, spec.rows).apps {
        println!(
            "codec '{}': {} CLBs, shape {:?}",
            app.name,
            app.compiled.blocks(),
            app.compiled.shape()
        );
        ids.push(lib.register_shared(app.compiled));
    }
    let lib = Arc::new(lib);

    // 40 codec jobs, standard drawn Zipf (rank 0 = dominant standard).
    let zipf = Zipf::new(ids.len(), 1.5);
    let mut rng = SimRng::new(42);
    let mut specs = Vec::new();
    let mut at = SimTime::ZERO;
    for i in 0..40 {
        at += SimDuration::from_micros(rng.range_u64(200, 3_000));
        let cid = ids[zipf.sample(&mut rng)];
        specs.push(TaskSpec::new(
            format!("frame{i}"),
            at,
            vec![
                Op::Cpu(SimDuration::from_micros(300)),
                Op::FpgaRun {
                    circuit: cid,
                    cycles: rng.range_u64(30_000, 120_000),
                },
            ],
        ));
    }

    // Dominant codec resident; others overlaid (slots sized for the widest
    // of the *swappable* codecs), LRU replacement.
    let widest = ids[1..]
        .iter()
        .map(|&i| lib.get(i).shape().0)
        .max()
        .unwrap();
    let mgr =
        OverlayManager::new(lib.clone(), timing, vec![ids[0]], widest, Replacement::Lru).unwrap();
    println!("\noverlay slots: {}", mgr.slot_count());

    let r = System::new(
        lib,
        mgr,
        RoundRobinScheduler::new(SimDuration::from_millis(5)),
        SystemConfig {
            preempt: PreemptAction::SaveRestore,
            ..Default::default()
        },
        specs,
    )
    .run()
    .unwrap();

    let s = r.manager_stats;
    println!(
        "\n40 codec jobs done in {:.1} ms; hit rate {:.0}%, {} downloads, {} evictions, overhead {:.1}%",
        r.makespan.as_millis_f64(),
        100.0 * s.hits as f64 / (s.hits + s.misses) as f64,
        s.downloads,
        s.evictions,
        100.0 * r.overhead_fraction()
    );
}
