//! Property-style tests over the core invariants, spanning crates: random
//! netlists must survive the full map→pack→place flow functionally intact;
//! region algebra must behave like interval arithmetic; the virtual-memory
//! simulators must obey classic paging laws.
//!
//! Cases are generated from a deterministic seed sweep ([`fsim::SimRng`])
//! instead of `proptest` (no third-party crates in the build image); every
//! failure message names the seed that reproduces it.

use fsim::SimRng;

/// Build a random combinational netlist from a recipe of gate choices.
fn random_netlist(ops: &[u8], n_inputs: usize) -> netlist::Netlist {
    let mut b = netlist::Builder::new("rand");
    let inputs = b.inputs(n_inputs);
    let mut nodes = inputs.clone();
    for (k, &op) in ops.iter().enumerate() {
        let a = nodes[(op as usize * 7 + k) % nodes.len()];
        let c = nodes[(op as usize * 13 + k * 3 + 1) % nodes.len()];
        let s = nodes[(op as usize * 29 + k * 5 + 2) % nodes.len()];
        let id = match op % 7 {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 => b.nand(a, c),
            4 => b.nor(a, c),
            5 => b.not(a),
            _ => b.mux(s, a, c),
        };
        nodes.push(id);
    }
    // Make the last few nodes observable.
    let n = nodes.len();
    for (i, &id) in nodes[n.saturating_sub(4)..].iter().enumerate() {
        b.output(format!("o{i}"), id);
    }
    b.finish()
}

fn random_ops(rng: &mut SimRng, max_len: u64) -> Vec<u8> {
    let n = 1 + rng.below(max_len) as usize;
    (0..n).map(|_| rng.next_u64() as u8).collect()
}

/// LUT mapping preserves the function of arbitrary combinational netlists
/// (checked on 64 random input vectors in one pass).
#[test]
fn mapping_preserves_function() {
    for seed in 0..48u64 {
        let mut rng = SimRng::new(seed);
        let ops = random_ops(&mut rng, 119);
        let n_inputs = 2 + rng.below(8) as usize;
        let net = random_netlist(&ops, n_inputs);
        let mapped = netlist::map_to_luts(&net, netlist::MapOptions::default());
        assert_eq!(mapped.validate(), Ok(()), "seed {seed}");

        let words: Vec<u64> = (0..n_inputs).map(|_| rng.next_u64()).collect();
        let mut gsim = netlist::Simulator::new(&net);
        gsim.eval(&words);
        let mut lsim = netlist::lutnet::LutSimulator::new(&mapped);
        lsim.eval(&words);
        let golden: Vec<u64> = gsim.outputs();
        let got: Vec<u64> = lsim.outputs(&words);
        assert_eq!(golden, got, "seed {seed}");
    }
}

/// Packing/placement keep every block on a distinct cell inside the
/// region, for arbitrary netlists and shapes.
#[test]
fn placement_is_a_valid_injection() {
    for seed in 0..32u64 {
        let mut rng = SimRng::new(seed ^ 0x9_1ACE);
        let ops = random_ops(&mut rng, 79);
        let n_inputs = 2 + rng.below(6) as usize;
        let net = random_netlist(&ops, n_inputs);
        let compiled = pnr::compile(
            &net,
            pnr::CompileOptions {
                seed: rng.next_u64(),
                ..Default::default()
            },
        )
        .unwrap();
        let p = &compiled.placed;
        let mut seen = std::collections::HashSet::new();
        for &(c, r) in &p.coords {
            assert!(c < p.width && r < p.height, "seed {seed}");
            assert!(seen.insert((c, r)), "seed {seed}: cell double-booked");
        }
    }
}

/// Rect splitting then merging is the identity; split parts never
/// intersect and tile the original area.
#[test]
fn rect_split_merge_roundtrip() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(seed);
        let col = rng.below(50) as u32;
        let row = rng.below(50) as u32;
        let w = 2 + rng.below(38) as u32;
        let h = 2 + rng.below(38) as u32;
        let at_frac = 1 + rng.below(99) as u32;
        let r = fpga::Rect::new(col, row, w, h);
        let at_col = col + 1 + (at_frac % (w - 1));
        let (a, b) = r.split_at_col(at_col);
        assert!(!a.intersects(&b), "seed {seed}");
        assert_eq!(a.area() + b.area(), r.area(), "seed {seed}");
        assert_eq!(a.merge(&b), Some(r), "seed {seed}");

        let at_row = row + 1 + (at_frac % (h - 1));
        let (t, bt) = r.split_at_row(at_row);
        assert!(!t.intersects(&bt), "seed {seed}");
        assert_eq!(t.merge(&bt), Some(r), "seed {seed}");
    }
}

/// LRU paging obeys the stack property: more slots never cause more
/// faults (no Belady anomaly), for arbitrary traces.
#[test]
fn lru_paging_has_no_belady_anomaly() {
    for seed in 0..32u64 {
        let mut rng = SimRng::new(seed);
        let n = 1 + rng.below(300) as usize;
        let trace: Vec<usize> = (0..n).map(|_| rng.below(6) as usize).collect();
        let small = 2 + rng.below(3) as u32;
        let func = vfpga::vmem::SegmentedFunction {
            segment_widths: vec![2, 3, 1, 2, 4, 2],
        };
        let timing = fpga::ConfigTiming {
            spec: fpga::device::part("VF400"),
            port: fpga::ConfigPort::SerialFast,
        };
        let faults = |budget: u32| {
            let mut p = vfpga::vmem::PagingSim::new(
                &func,
                timing,
                budget,
                2,
                vfpga::vmem::Replacement::Lru,
            );
            p.run_trace(&trace).faults
        };
        let small_budget = small * 2;
        let big_budget = small_budget + 4;
        assert!(faults(small_budget) >= faults(big_budget), "seed {seed}");
    }
}

/// Bitstream CRC detects any single-field tampering of a frame write.
#[test]
fn bitstream_crc_detects_tampering() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(seed);
        let col = rng.below(30) as u32;
        let row0 = rng.below(30) as u32;
        let table = rng.next_u64() as u16;
        let flip = (rng.next_u64() as u16).max(1);
        let cell = fpga::ClbCell::comb(table, [fpga::ClbSource::None; 4]);
        let mk = || {
            fpga::Bitstream::new(
                "t",
                vec![fpga::FrameWrite {
                    col,
                    row0,
                    cells: vec![Some(cell)],
                }],
                vec![],
                false,
            )
        };
        assert!(mk().crc_ok(), "seed {seed}");
        let mut bad = mk();
        if let Some(Some(c)) = bad.frames[0].cells.first_mut().map(|c| c.as_mut()) {
            c.lut_table ^= flip;
        }
        assert!(!bad.crc_ok(), "seed {seed}");
    }
}

/// Summary::merge is associative-enough: merging partitions of a sample
/// set matches the sequential summary.
#[test]
fn summary_merge_matches_sequential() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(seed);
        let n = 1 + rng.below(200) as usize;
        let xs: Vec<f64> = (0..n)
            .map(|_| (rng.next_u64() as f64 / u64::MAX as f64 - 0.5) * 2e6)
            .collect();
        let cut = rng.below(n as u64) as usize;
        let mut whole = fsim::Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = fsim::Summary::new();
        let mut right = fsim::Summary::new();
        for &x in &xs[..cut] {
            left.add(x);
        }
        for &x in &xs[cut..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count(), "seed {seed}");
        assert!(
            (left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()),
            "seed {seed}"
        );
        assert!(
            (left.variance() - whole.variance()).abs() < 1e-5 * (1.0 + whole.variance().abs()),
            "seed {seed}"
        );
    }
}
