//! Property-based tests over the core invariants, spanning crates:
//! random netlists must survive the full map→pack→place flow functionally
//! intact; region algebra must behave like interval arithmetic; the
//! virtual-memory simulators must obey classic paging laws.

use proptest::prelude::*;

/// Build a random combinational netlist from a recipe of gate choices.
fn random_netlist(ops: &[u8], n_inputs: usize) -> netlist::Netlist {
    let mut b = netlist::Builder::new("rand");
    let inputs = b.inputs(n_inputs);
    let mut nodes = inputs.clone();
    for (k, &op) in ops.iter().enumerate() {
        let a = nodes[(op as usize * 7 + k) % nodes.len()];
        let c = nodes[(op as usize * 13 + k * 3 + 1) % nodes.len()];
        let s = nodes[(op as usize * 29 + k * 5 + 2) % nodes.len()];
        let id = match op % 7 {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 => b.nand(a, c),
            4 => b.nor(a, c),
            5 => b.not(a),
            _ => b.mux(s, a, c),
        };
        nodes.push(id);
    }
    // Make the last few nodes observable.
    let n = nodes.len();
    for (i, &id) in nodes[n.saturating_sub(4)..].iter().enumerate() {
        b.output(format!("o{i}"), id);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LUT mapping preserves the function of arbitrary combinational
    /// netlists (checked on 64 random input vectors in one pass).
    #[test]
    fn mapping_preserves_function(
        ops in proptest::collection::vec(0u8..=255, 1..120),
        n_inputs in 2usize..10,
        seed in any::<u64>(),
    ) {
        let net = random_netlist(&ops, n_inputs);
        let mapped = netlist::map_to_luts(&net, netlist::MapOptions::default());
        prop_assert_eq!(mapped.validate(), Ok(()));

        let mut rng = fsim::SimRng::new(seed);
        let words: Vec<u64> = (0..n_inputs).map(|_| rng.next_u64()).collect();
        let mut gsim = netlist::Simulator::new(&net);
        gsim.eval(&words);
        let mut lsim = netlist::lutnet::LutSimulator::new(&mapped);
        lsim.eval(&words);
        let golden: Vec<u64> = gsim.outputs();
        let got: Vec<u64> = lsim.outputs(&words);
        prop_assert_eq!(golden, got);
    }

    /// Packing/placement keep every block on a distinct cell inside the
    /// region, for arbitrary netlists and shapes.
    #[test]
    fn placement_is_a_valid_injection(
        ops in proptest::collection::vec(0u8..=255, 1..80),
        n_inputs in 2usize..8,
        seed in any::<u64>(),
    ) {
        let net = random_netlist(&ops, n_inputs);
        let compiled = pnr::compile(
            &net,
            pnr::CompileOptions { seed, ..Default::default() },
        ).unwrap();
        let p = &compiled.placed;
        let mut seen = std::collections::HashSet::new();
        for &(c, r) in &p.coords {
            prop_assert!(c < p.width && r < p.height);
            prop_assert!(seen.insert((c, r)), "cell double-booked");
        }
    }

    /// Rect splitting then merging is the identity; split parts never
    /// intersect and tile the original area.
    #[test]
    fn rect_split_merge_roundtrip(
        col in 0u32..50, row in 0u32..50,
        w in 2u32..40, h in 2u32..40,
        at_frac in 1u32..100,
    ) {
        let r = fpga::Rect::new(col, row, w, h);
        let at_col = col + 1 + (at_frac % (w - 1));
        let (a, b) = r.split_at_col(at_col);
        prop_assert!(!a.intersects(&b));
        prop_assert_eq!(a.area() + b.area(), r.area());
        prop_assert_eq!(a.merge(&b), Some(r));

        let at_row = row + 1 + (at_frac % (h - 1));
        let (t, bt) = r.split_at_row(at_row);
        prop_assert!(!t.intersects(&bt));
        prop_assert_eq!(t.merge(&bt), Some(r));
    }

    /// LRU paging obeys the stack property: more slots never cause more
    /// faults (no Belady anomaly), for arbitrary traces.
    #[test]
    fn lru_paging_has_no_belady_anomaly(
        trace in proptest::collection::vec(0usize..6, 1..300),
        small in 2u32..5,
    ) {
        let func = vfpga::vmem::SegmentedFunction {
            segment_widths: vec![2, 3, 1, 2, 4, 2],
        };
        let timing = fpga::ConfigTiming {
            spec: fpga::device::part("VF400"),
            port: fpga::ConfigPort::SerialFast,
        };
        let faults = |budget: u32| {
            let mut p = vfpga::vmem::PagingSim::new(
                &func, timing, budget, 2, vfpga::vmem::Replacement::Lru,
            );
            p.run_trace(&trace).faults
        };
        let small_budget = small * 2;
        let big_budget = small_budget + 4;
        prop_assert!(faults(small_budget) >= faults(big_budget));
    }

    /// Bitstream CRC detects any single-field tampering of a frame write.
    #[test]
    fn bitstream_crc_detects_tampering(
        col in 0u32..30, row0 in 0u32..30, table in any::<u16>(),
        flip in any::<u16>(),
    ) {
        prop_assume!(flip != 0);
        let cell = fpga::ClbCell::comb(table, [fpga::ClbSource::None; 4]);
        let bs = fpga::Bitstream::new(
            "t",
            vec![fpga::FrameWrite { col, row0, cells: vec![Some(cell)] }],
            vec![],
            false,
        );
        prop_assert!(bs.crc_ok());
        let mut bad = bs.clone();
        if let Some(Some(c)) = bad.frames[0].cells.first_mut().map(|c| c.as_mut()) {
            c.lut_table ^= flip;
        }
        prop_assert!(!bad.crc_ok());
    }

    /// Summary::merge is associative-enough: merging partitions of a sample
    /// set matches the sequential summary.
    #[test]
    fn summary_merge_matches_sequential(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        cut in 0usize..200,
    ) {
        let cut = cut % xs.len();
        let mut whole = fsim::Summary::new();
        for &x in &xs { whole.add(x); }
        let mut left = fsim::Summary::new();
        let mut right = fsim::Summary::new();
        for &x in &xs[..cut] { left.add(x); }
        for &x in &xs[cut..] { right.add(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((left.variance() - whole.variance()).abs()
            < 1e-5 * (1.0 + whole.variance().abs()));
    }
}
