//! Cross-crate integration tests: the full pipeline from gate netlist to
//! executing fabric, and OS-level scenarios spanning every crate.

use pnr::{compile, emit_bitstream, CompileOptions, PinAssignment};
use std::collections::HashMap;

/// Compile → emit → download → execute, checking functional equivalence
/// against the gate-level golden simulation for a mix of circuits.
#[test]
fn full_flow_preserves_function_for_library_circuits() {
    let circuits = vec![
        netlist::library::arith::ripple_adder("add5", 5),
        netlist::library::logic::comparator("cmp4", 4),
        netlist::library::codes::hamming74_encode("h74"),
        netlist::library::logic::barrel_shifter("bs8", 8),
    ];
    for net in &circuits {
        let compiled = compile(net, CompileOptions::default()).unwrap();
        let pins = PinAssignment::contiguous(net.num_inputs(), net.outputs().len());
        let bs = emit_bitstream(&compiled.placed, (1, 1), &pins, false);
        let mut dev = fpga::Device::new(fpga::device::part("VF400"), fpga::ConfigPort::SerialFast);
        dev.apply(&bs).unwrap();
        let mut view = fpga::FabricView::resolve(&dev, dev.spec().full_rect()).unwrap();

        // 64 random vectors per circuit, evaluated in one bit-parallel pass.
        let mut rng = fsim::SimRng::new(0xF10);
        let in_words: Vec<u64> = (0..net.num_inputs()).map(|_| rng.next_u64()).collect();
        let mut gsim = netlist::Simulator::new(net);
        gsim.eval(&in_words);
        let pinvals: HashMap<u32, u64> = pins
            .inputs
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, in_words[i]))
            .collect();
        view.eval(&dev, &pinvals);
        for (o, &p) in pins.outputs.iter().enumerate() {
            assert_eq!(
                view.output(&dev, p),
                gsim.output(o),
                "{}: output {o} mismatch",
                net.name()
            );
        }
    }
}

/// The fabric executes exactly what configuration RAM holds: after the OS
/// clears a region, the circuit is gone and the view reports errors.
#[test]
fn clearing_a_region_really_unloads_the_circuit() {
    let net = netlist::library::logic::parity("p4", 4);
    let compiled = compile(&net, CompileOptions::default()).unwrap();
    let pins = PinAssignment::contiguous(4, 1);
    let bs = emit_bitstream(&compiled.placed, (0, 0), &pins, false);
    let mut dev = fpga::Device::new(fpga::device::part("VF100"), fpga::ConfigPort::SerialFast);
    dev.apply(&bs).unwrap();
    assert!(fpga::FabricView::resolve(&dev, dev.spec().full_rect()).is_ok());

    dev.clear_region(&fpga::Rect::new(
        0,
        0,
        compiled.placed.width,
        compiled.placed.height,
    ));
    // The region is empty and its output IOB unbound: nothing executes.
    let view = fpga::FabricView::resolve(&dev, dev.spec().full_rect()).unwrap();
    assert_eq!(view.cell_count(), 0);
    assert!(view.output_pins().is_empty());
}

/// Paper §3 end-to-end: preempt a sequential circuit mid-run via device
/// readback, let another circuit use the fabric, restore, and verify the
/// computation continues exactly where it left off.
#[test]
fn preemption_save_restore_on_real_fabric() {
    let lfsr = netlist::library::seq::lfsr("lfsr8", 8, 0b1011_1000);
    let compiled = compile(&lfsr, CompileOptions::default()).unwrap();
    let pins = PinAssignment::contiguous(0, 8);
    let region = fpga::Rect::new(0, 0, compiled.placed.width, compiled.placed.height);
    let bs = emit_bitstream(&compiled.placed, (0, 0), &pins, false);

    let mut dev = fpga::Device::new(fpga::device::part("VF200"), fpga::ConfigPort::SerialFast);
    dev.apply(&bs).unwrap();
    let mut view = fpga::FabricView::resolve(&dev, region).unwrap();
    let no_pins = HashMap::new();

    // Run 7 cycles, save state.
    for _ in 0..7 {
        view.step(&mut dev, &no_pins);
    }
    let (saved, _) = dev.readback_region(&region);

    // Reference trajectory: 5 more cycles.
    let mut reference = Vec::new();
    for _ in 0..5 {
        view.step(&mut dev, &no_pins);
        reference.push(dev.readback_region(&region).0);
    }

    // "Evict": another circuit overwrites the region, then the LFSR is
    // reloaded and its state written back.
    let intruder = netlist::library::seq::counter("cnt", 6);
    let ic = compile(&intruder, CompileOptions::default()).unwrap();
    let ipins = PinAssignment {
        inputs: vec![20],
        outputs: (21..27).collect(),
    };
    dev.apply(&emit_bitstream(&ic.placed, (0, 0), &ipins, false))
        .unwrap();

    // The OS clears the intruder's partition before restoring the LFSR
    // (the intruder's region may be larger than the LFSR's own frames).
    dev.clear_region(&fpga::Rect::new(0, 0, ic.placed.width, ic.placed.height));
    dev.apply(&bs).unwrap();
    dev.write_state_region(&region, &saved);
    let mut view2 = fpga::FabricView::resolve(&dev, region).unwrap();
    for expect in &reference {
        view2.step(&mut dev, &no_pins);
        assert_eq!(
            &dev.readback_region(&region).0,
            expect,
            "trajectory diverged after restore"
        );
    }
}

/// Two tasks with different circuits on one device under the OS: the whole
/// stack (workload → vfpga → pnr → fpga timing) agrees on overheads.
#[test]
fn os_layer_charges_download_times_consistent_with_device_timing() {
    use fsim::{SimDuration, SimTime};
    use std::sync::Arc;
    use vfpga::manager::dynload::DynLoadManager;
    use vfpga::{FifoScheduler, Op, PreemptAction, System, SystemConfig, TaskSpec};

    let spec = fpga::device::part("VF400");
    let timing = fpga::ConfigTiming {
        spec,
        port: fpga::ConfigPort::SerialFast,
    };
    let mut lib = vfpga::CircuitLib::new();
    let suite = workload::suite(workload::Domain::Storage, spec.rows);
    let mut ids = Vec::new();
    for app in suite.apps {
        ids.push(lib.register_shared(app.compiled));
    }
    let lib = Arc::new(lib);

    let specs = vec![
        TaskSpec::new(
            "t0",
            SimTime::ZERO,
            vec![Op::FpgaRun {
                circuit: ids[0],
                cycles: 1000,
            }],
        ),
        TaskSpec::new(
            "t1",
            SimTime::ZERO,
            vec![Op::FpgaRun {
                circuit: ids[1],
                cycles: 1000,
            }],
        ),
    ];
    let mgr = DynLoadManager::new(lib.clone(), timing, PreemptAction::WaitCompletion);
    let r = System::new(
        lib.clone(),
        mgr,
        FifoScheduler::new(),
        SystemConfig::default(),
        specs,
    )
    .run()
    .unwrap();

    // The manager's accumulated config time must match per-circuit frame
    // arithmetic from the fpga crate.
    let expect: u64 = ids[..2]
        .iter()
        .map(|&cid| {
            use fpga::config::{FRAME_ADDR_BITS, HEADER_BITS};
            let frames = lib.get(cid).frames() as u64;
            let bits = HEADER_BITS + frames * (FRAME_ADDR_BITS + timing.frame_bits());
            bits * 1_000_000_000 / timing.port.bits_per_sec()
        })
        .sum();
    assert_eq!(r.manager_stats.config_time, SimDuration::from_nanos(expect));
    assert_eq!(r.manager_stats.downloads, 2);
}

/// Determinism across the whole stack: identical seeds give identical
/// reports, different seeds differ.
#[test]
fn whole_stack_is_deterministic() {
    use fsim::{SimDuration, SimRng};
    use std::sync::Arc;
    use vfpga::manager::partition::{PartitionManager, PartitionMode};
    use vfpga::{PreemptAction, RoundRobinScheduler, System, SystemConfig};
    use workload::{poisson_tasks, MixParams};

    let spec = fpga::device::part("VF400");
    let timing = fpga::ConfigTiming {
        spec,
        port: fpga::ConfigPort::SerialFast,
    };
    let mut lib = vfpga::CircuitLib::new();
    let mut ids = Vec::new();
    for app in workload::suite(workload::Domain::Telecom, spec.rows).apps {
        ids.push(lib.register_shared(app.compiled));
    }
    let lib = Arc::new(lib);

    let run = |seed: u64| {
        let mut rng = SimRng::new(seed);
        let specs = poisson_tasks(&MixParams::default(), &ids, &mut rng);
        let mgr = PartitionManager::new(
            lib.clone(),
            timing,
            PartitionMode::Variable,
            PreemptAction::SaveRestore,
        )
        .unwrap();
        System::new(
            lib.clone(),
            mgr,
            RoundRobinScheduler::new(SimDuration::from_millis(5)),
            SystemConfig {
                preempt: PreemptAction::SaveRestore,
                ..Default::default()
            },
            specs,
        )
        .run()
        .unwrap()
    };
    let a = run(11);
    let b = run(11);
    let c = run(12);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.manager_stats, b.manager_stats);
    assert_ne!(a.makespan, c.makespan, "different seeds should differ");
}
