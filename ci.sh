#!/usr/bin/env bash
# Local CI — the same gates .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier 1)"
cargo test -q --workspace

echo "==> e15 fault-recovery smoke (JSON parse-back + bit reproducibility)"
E15_TMP="$(mktemp -d)"
trap 'rm -rf "$E15_TMP"' EXIT
# The binary itself re-reads and re-parses the export through the bench
# JSON reader and exits nonzero if it does not round-trip.
./target/release/e15_fault_recovery --smoke --seed 3605 --json "$E15_TMP/a.json" >/dev/null
./target/release/e15_fault_recovery --smoke --seed 3605 --json "$E15_TMP/b.json" >/dev/null
cmp "$E15_TMP/a.json" "$E15_TMP/b.json" \
  || { echo "e15 smoke: same-seed runs are not byte-identical"; exit 1; }

echo "CI green."
