#!/usr/bin/env bash
# Local CI — the same gates .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier 1)"
cargo test -q --workspace

echo "CI green."
