#!/usr/bin/env bash
# Local CI — the same gates .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier 1)"
cargo test -q --workspace

echo "==> cargo bench --no-run (harness must keep compiling)"
cargo bench --no-run --workspace >/dev/null

echo "==> e15 fault-recovery smoke (JSON parse-back + bit reproducibility)"
E15_TMP="$(mktemp -d)"
trap 'rm -rf "$E15_TMP"' EXIT
JDIFF=./target/release/jdiff
# The binary itself re-reads and re-parses the export through the bench
# JSON reader and exits nonzero if it does not round-trip. Exports carry
# a volatile wall-clock `host` section, so the comparison goes through
# jdiff, which strips it before demanding byte-identity.
./target/release/e15_fault_recovery --smoke --seed 3605 --json "$E15_TMP/a.json" >/dev/null
./target/release/e15_fault_recovery --smoke --seed 3605 --json "$E15_TMP/b.json" >/dev/null
"$JDIFF" "$E15_TMP/a.json" "$E15_TMP/b.json" \
  || { echo "e15 smoke: same-seed runs are not identical modulo host"; exit 1; }

echo "==> parallel determinism smoke (--threads 4 vs --threads 1)"
# The sweep engine must be a pure performance knob: any thread count has
# to reproduce the serial export exactly, modulo the host section.
./target/release/e15_fault_recovery --smoke --threads 1 --json "$E15_TMP/t1.json" >/dev/null
./target/release/e15_fault_recovery --smoke --threads 4 --json "$E15_TMP/t4.json" >/dev/null
"$JDIFF" "$E15_TMP/t1.json" "$E15_TMP/t4.json" \
  || { echo "e15 smoke: --threads 4 diverged from --threads 1"; exit 1; }
./target/release/e05_partitioning --threads 1 --json "$E15_TMP/e05t1.json" >/dev/null
./target/release/e05_partitioning --threads 4 --json "$E15_TMP/e05t4.json" >/dev/null
"$JDIFF" "$E15_TMP/e05t1.json" "$E15_TMP/e05t4.json" \
  || { echo "e05: --threads 4 diverged from --threads 1"; exit 1; }

echo "==> e16 crash-restore smoke (differential verifier + journal ablation)"
# The binary aborts in-process if any journaled cell diverges from the
# uninterrupted same-seed baseline. The JSON gate re-checks the exported
# counters and additionally proves the ablation bites: with the journal
# off the smoke cell must record silent corruption and divergence, or the
# journal has stopped being load-bearing.
./target/release/e16_crash_restore --smoke --json "$E15_TMP/e16a.json" >/dev/null
./target/release/e16_crash_restore --smoke --threads 4 --json "$E15_TMP/e16b.json" >/dev/null
"$JDIFF" "$E15_TMP/e16a.json" "$E15_TMP/e16b.json" \
  || { echo "e16 smoke: parallel same-seed run diverged"; exit 1; }
python3 - "$E15_TMP/e16a.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
counters = doc["metrics"]["counters"]
assert counters["journal_on_divergences"] == 0, "journaled restore diverged"
assert counters["journal_off_divergences"] > 0, "journal-off ablation did not diverge"
assert doc["params"]["journal_off_corruptions"] > 0, "no silent corruption recorded"
print("e16 gate: journal on = 0 divergences, journal off = "
      f"{counters['journal_off_divergences']} (ablation bites)")
PY

echo "==> e17 overload smoke (admission control: determinism + liveness)"
# Same-seed bit reproducibility and thread invariance, like e15/e16.
./target/release/e17_overload --smoke --seed 3605 --json "$E15_TMP/e17a.json" >/dev/null
./target/release/e17_overload --smoke --seed 3605 --json "$E15_TMP/e17b.json" >/dev/null
"$JDIFF" "$E15_TMP/e17a.json" "$E15_TMP/e17b.json" \
  || { echo "e17 smoke: same-seed runs are not identical modulo host"; exit 1; }
./target/release/e17_overload --smoke --threads 1 --json "$E15_TMP/e17t1.json" >/dev/null
./target/release/e17_overload --smoke --threads 4 --json "$E15_TMP/e17t4.json" >/dev/null
"$JDIFF" "$E15_TMP/e17t1.json" "$E15_TMP/e17t4.json" \
  || { echo "e17 smoke: --threads 4 diverged from --threads 1"; exit 1; }
# Liveness under a deliberately hanging task: the smoke sweep contains a
# never-completing FPGA op that only the watchdog can reclaim. The hard
# wall-clock timeout is the point — if quarantine regresses, the binary
# spins or deadlocks instead of exiting, and CI must fail loudly rather
# than hang.
timeout 120 ./target/release/e17_overload --smoke --json "$E15_TMP/e17live.json" >/dev/null \
  || { echo "e17 smoke: hanging task did not terminate (watchdog/quarantine broken)"; exit 1; }
python3 - "$E15_TMP/e17live.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
reports = {r["label"]: r for r in doc["reports"]}
off = reports["off/baseline"]
assert "admission" not in off, "admission-off export grew an admission section"
on = [r for l, r in reports.items() if l != "off/baseline"]
assert on, "no admission cells in smoke sweep"
assert any(r["admission"]["quarantined"] > 0 for r in on), \
    "no cell quarantined the hanging task"
assert all(r["admission"]["watchdog_fired"] > 0 for r in on), \
    "a cell with a hanging task never fired its watchdog"
print("e17 gate: hanging task quarantined, admission-off export unchanged")
PY

echo "==> e18 deadline smoke (EDF dominance + gate accounting + hysteresis)"
# Same determinism contract as e15/e16/e17, then the substance: EDF must
# strictly beat FIFO on deadline misses, the schedulability gate's
# refusals must stay disjoint from quota load-shedding, and the split
# hysteresis pair must never flap back out of degraded mode while the
# coincident-mark baseline does.
./target/release/e18_deadlines --smoke --seed 3605 --json "$E15_TMP/e18a.json" >/dev/null
./target/release/e18_deadlines --smoke --seed 3605 --json "$E15_TMP/e18b.json" >/dev/null
"$JDIFF" "$E15_TMP/e18a.json" "$E15_TMP/e18b.json" \
  || { echo "e18 smoke: same-seed runs are not identical modulo host"; exit 1; }
./target/release/e18_deadlines --smoke --threads 1 --json "$E15_TMP/e18t1.json" >/dev/null
./target/release/e18_deadlines --smoke --threads 4 --json "$E15_TMP/e18t4.json" >/dev/null
"$JDIFF" "$E15_TMP/e18t1.json" "$E15_TMP/e18t4.json" \
  || { echo "e18 smoke: --threads 4 diverged from --threads 1"; exit 1; }
timeout 120 ./target/release/e18_deadlines --smoke --json "$E15_TMP/e18live.json" >/dev/null \
  || { echo "e18 smoke: sweep did not terminate"; exit 1; }
python3 - "$E15_TMP/e18live.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
reports = {r["label"]: r for r in doc["reports"]}
def missed(r):
    return sum(1 for t in r["tasks"] if t.get("deadline_missed"))
edf, fifo = missed(reports["heavy/edf"]), missed(reports["heavy/fifo"])
assert edf < fifo, f"EDF must strictly beat FIFO on misses ({edf} vs {fifo})"
gate = reports["heavy/edf/gate-x1"]
ga = gate["admission"]
assert ga.get("unschedulable", 0) > 0, "gate never refused an arrival"
assert ga.get("rejected", 0) > 0, "gate cell lost its quota shedding"
for t in gate["tasks"]:
    assert not (t.get("unschedulable") and t.get("rejected")), \
        "a task counted both unschedulable and quota-rejected"
fb = reports["heavy/edf/flap-baseline"]["admission"]
hy = reports["heavy/edf/hysteresis"]["admission"]
assert fb.get("degrade_exits", 0) >= 1, "coincident-mark baseline never flapped"
assert hy.get("degrade_enters", 0) >= 1, "hysteresis cell never entered degraded mode"
assert hy.get("degrade_exits", 0) == 0, "split hysteresis pair flapped back out"
print(f"e18 gate: edf {edf} < fifo {fifo} misses, gate unsched={ga['unschedulable']}"
      f" rejected={ga['rejected']}, flap {fb['degrade_enters']}/{fb['degrade_exits']}"
      f" vs hysteresis {hy['degrade_enters']}/{hy['degrade_exits']}")
PY

echo "==> e19 fleet smoke (device-crash failover: determinism + liveness + equivalence)"
# Same determinism contract as e15-e18. The binary aborts in-process if a
# capacity cell loses admitted work or diverges from the uninterrupted
# single-device baseline, so merely exiting zero is already the main gate;
# the wall-clock timeout catches a fleet event loop that stops converging.
./target/release/e19_fleet --smoke --seed 3605 --json "$E15_TMP/e19a.json" >/dev/null
./target/release/e19_fleet --smoke --seed 3605 --json "$E15_TMP/e19b.json" >/dev/null
"$JDIFF" "$E15_TMP/e19a.json" "$E15_TMP/e19b.json" \
  || { echo "e19 smoke: same-seed runs are not identical modulo host"; exit 1; }
./target/release/e19_fleet --smoke --threads 1 --json "$E15_TMP/e19t1.json" >/dev/null
./target/release/e19_fleet --smoke --threads 4 --json "$E15_TMP/e19t4.json" >/dev/null
"$JDIFF" "$E15_TMP/e19t1.json" "$E15_TMP/e19t4.json" \
  || { echo "e19 smoke: --threads 4 diverged from --threads 1"; exit 1; }
timeout 120 ./target/release/e19_fleet --smoke --json "$E15_TMP/e19live.json" >/dev/null \
  || { echo "e19 smoke: fleet did not survive device crashes (failover liveness broken)"; exit 1; }
# A 1-device zero-fault fleet is the same machine as a plain System: both
# exports must be byte-identical (the files carry no host section at all).
./target/release/e19_fleet --smoke --equivalence "$E15_TMP/e19eq" >/dev/null 2>&1
"$JDIFF" "$E15_TMP/e19eq.single.json" "$E15_TMP/e19eq.fleet.json" \
  || { echo "e19: 1-device fleet diverged from the plain single-device system"; exit 1; }
python3 - "$E15_TMP/e19live.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
reports = {r["label"]: r for r in doc["reports"]}
for label, r in reports.items():
    if "/none/" in label or label.endswith("/none"):
        assert "fleet" not in r, f"zero-rate cell {label} grew a fleet section"
storm = [r for l, r in reports.items() if "/storm/" in l and "ablation" not in l]
assert storm, "no storm cells in smoke sweep"
assert any(r["fleet"]["failovers"] > 0 for r in storm), \
    "no storm cell failed over"
for r in storm:
    assert r["fleet"]["lost_in_flight"] == 0, "capacity cell lost work"
    assert not any(t.get("lost_in_flight") for t in r["tasks"]), \
        "capacity cell flagged a task lost"
abl = next(r for l, r in reports.items() if "ablation" in l)
fl = abl["fleet"]
assert fl["lost_in_flight"] > 0, "ablation cell lost nothing"
flagged = sum(1 for t in abl["tasks"] if t.get("lost_in_flight"))
assert flagged == fl["lost_in_flight"], "per-task lost flags disagree with the counter"
for t in abl["tasks"]:
    assert not (t.get("lost_in_flight") and (t.get("failed") or t.get("rejected")
                or t.get("quarantined"))), "lost_in_flight overlaps another slice"
print(f"e19 gate: {sum(r['fleet']['failovers'] for r in storm)} failovers, "
      f"capacity cells lost 0, ablation lost {fl['lost_in_flight']} (disjoint slice)")
PY

echo "==> e20 delta smoke (determinism + delta-beats-full + outcome identity)"
# Same determinism contract as e15-e19. The binary is its own main gate:
# it aborts in-process if any delta cell diverges from its full-download
# twin (diff_reports), if delta config overhead ever exceeds full, or if
# a >=50%-similar family never goes delta. The JSON pass re-checks the
# off-switch: delta-off cells must export no "delta" section at all —
# byte-identical to pre-delta behavior (the e01-e19 exports were verified
# unchanged against the pre-delta build when this gate was introduced).
./target/release/e20_delta --smoke --seed 3605 --json "$E15_TMP/e20a.json" >/dev/null
./target/release/e20_delta --smoke --seed 3605 --json "$E15_TMP/e20b.json" >/dev/null
"$JDIFF" "$E15_TMP/e20a.json" "$E15_TMP/e20b.json" \
  || { echo "e20 smoke: same-seed runs are not identical modulo host"; exit 1; }
./target/release/e20_delta --smoke --threads 1 --json "$E15_TMP/e20t1.json" >/dev/null
./target/release/e20_delta --smoke --threads 4 --json "$E15_TMP/e20t4.json" >/dev/null
"$JDIFF" "$E15_TMP/e20t1.json" "$E15_TMP/e20t4.json" \
  || { echo "e20 smoke: --threads 4 diverged from --threads 1"; exit 1; }
timeout 120 ./target/release/e20_delta --smoke --json "$E15_TMP/e20live.json" >/dev/null \
  || { echo "e20 smoke: in-process delta gates failed (outcome divergence or lost savings)"; exit 1; }
python3 - "$E15_TMP/e20live.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
reports = {r["label"]: r for r in doc["reports"]}
fulls = {l: r for l, r in reports.items() if l.endswith("/full")}
deltas = {l: r for l, r in reports.items() if l.endswith("/delta")}
assert fulls and len(fulls) == len(deltas), "unpaired e20 cells"
for l, r in fulls.items():
    assert "delta" not in r, f"delta-off cell {l} grew a delta section"
for l, r in deltas.items():
    assert "delta" in r, f"delta cell {l} lost its delta section"
high = [r for l, r in deltas.items() if float(l.split("/")[0][3:]) >= 0.5]
assert any(r["delta"]["delta_downloads"] > 0 for r in high), \
    "no >=50%-similar cell ever downloaded a delta"
counters = doc["metrics"]["counters"]
assert counters["delta_frames_saved"] > 0, "delta saved zero frames"
print(f"e20 gate: {len(fulls)} cell pairs, {counters['delta_downloads']} delta "
      f"downloads, {counters['delta_frames_saved']} frames saved, off-cells clean")
PY

echo "==> e21 live-migration smoke (determinism + crash-window equivalence + liveness)"
# Same determinism contract as e15-e20. The binary is its own main gate:
# it aborts in-process if any cell — including the three crash-window
# cells — diverges from the migration-free baseline (diff_reports), if a
# crash window resolves wrongly (intent-without-commit not rolled back,
# commit-without-free not redone idempotently), or if the rebalance cell
# leaves the piled-up tenants on one device. The wall-clock timeout
# catches a migration handler that stops the fleet loop from converging;
# the JSON pass re-checks the exported counters per crash window.
./target/release/e21_migration --smoke --seed 3605 --json "$E15_TMP/e21a.json" >/dev/null
./target/release/e21_migration --smoke --seed 3605 --json "$E15_TMP/e21b.json" >/dev/null
"$JDIFF" "$E15_TMP/e21a.json" "$E15_TMP/e21b.json" \
  || { echo "e21 smoke: same-seed runs are not identical modulo host"; exit 1; }
./target/release/e21_migration --smoke --threads 1 --json "$E15_TMP/e21t1.json" >/dev/null
./target/release/e21_migration --smoke --threads 4 --json "$E15_TMP/e21t4.json" >/dev/null
"$JDIFF" "$E15_TMP/e21t1.json" "$E15_TMP/e21t4.json" \
  || { echo "e21 smoke: --threads 4 diverged from --threads 1"; exit 1; }
timeout 120 ./target/release/e21_migration --smoke --json "$E15_TMP/e21live.json" >/dev/null \
  || { echo "e21 smoke: in-process migration gates failed (outcome divergence or unresolved crash window)"; exit 1; }
python3 - "$E15_TMP/e21live.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
reports = {r["label"]: r for r in doc["reports"]}
for label, r in reports.items():
    fl = r.get("fleet", {})
    assert fl.get("lost_in_flight", 0) == 0, f"cell {label} lost work in flight"
    assert not any(t.get("lost_in_flight") for t in r["tasks"]), \
        f"cell {label} flagged a task lost"
    if label.startswith("none/"):
        assert "fleet" not in r, f"zero-rate cell {label} grew a fleet section"
    if "src-mid-prepare" in label or "dest-mid-copy" in label:
        assert fl.get("migration_aborts", 0) >= 1, \
            f"{label}: intent-without-commit was not rolled back"
        assert "migration_redone_frees" not in fl, \
            f"{label}: pre-commit crash redid a free"
    if "commit-no-free" in label:
        assert fl.get("migration_redone_frees", 0) >= 1, \
            f"{label}: commit-without-free was not redone by replay"
        assert "migration_aborts" not in fl, f"{label}: committed migration aborted"
migrated = sum(r.get("fleet", {}).get("tenant_migrations", 0) for r in reports.values())
assert migrated > 0, "no cell exercised a live migration"
counters = doc["metrics"]["counters"]
print(f"e21 gate: {migrated} migrations across {len(reports)} cells, "
      f"{counters['migration_aborts']} rolled back, "
      f"{counters['migration_redone_frees']} frees redone, zero lost")
PY

echo "==> pnr disk-cache smoke (cold populate / warm hit / corrupt-entry fallback)"
# The persistent compile cache must be invisible to results: a warm
# process and a process reading a vandalized cache must both reproduce
# the cold export byte-for-byte (corrupt entries read as misses and are
# rewritten; the cache is advisory, never load-bearing).
CACHE_DIR="$E15_TMP/pnr-cache"
VFPGA_CACHE_DIR="$CACHE_DIR" ./target/release/e15_fault_recovery --smoke --seed 3605 \
  --json "$E15_TMP/cachecold.json" >/dev/null
ls "$CACHE_DIR"/*.json >/dev/null 2>&1 \
  || { echo "disk cache: cold run wrote no entries"; exit 1; }
VFPGA_CACHE_DIR="$CACHE_DIR" ./target/release/e15_fault_recovery --smoke --seed 3605 \
  --json "$E15_TMP/cachewarm.json" >/dev/null
"$JDIFF" "$E15_TMP/cachecold.json" "$E15_TMP/cachewarm.json" \
  || { echo "disk cache: warm run diverged from cold"; exit 1; }
for f in "$CACHE_DIR"/*.json; do printf 'not json' > "$f"; done
VFPGA_CACHE_DIR="$CACHE_DIR" ./target/release/e15_fault_recovery --smoke --seed 3605 \
  --json "$E15_TMP/cachebad.json" >/dev/null
"$JDIFF" "$E15_TMP/cachecold.json" "$E15_TMP/cachebad.json" \
  || { echo "disk cache: corrupt entries changed results"; exit 1; }
if grep -lq 'not json' "$CACHE_DIR"/*.json; then
  echo "disk cache: corrupt entries were not rewritten"; exit 1
fi
echo "disk-cache gate: $(ls "$CACHE_DIR"/*.json | wc -l) entries, warm and corrupt runs identical to cold"

echo "==> bench_perf smoke (perf schema + self-compare + thread invariance)"
# The perf harness must (a) write a document that parses back through the
# bench JSON reader with the expected schema, (b) report zero regressions
# when compared against itself, and (c) keep its deterministic `sim`
# section byte-identical at any --threads — jdiff strips the volatile
# host section exactly as it does for experiment exports.
./target/release/bench_perf --smoke --threads 1 --out "$E15_TMP/perf1.json" >/dev/null
./target/release/bench_perf --smoke --threads 4 --out "$E15_TMP/perf4.json" >/dev/null
"$JDIFF" "$E15_TMP/perf1.json" "$E15_TMP/perf4.json" \
  || { echo "bench_perf: --threads 4 diverged from --threads 1"; exit 1; }
./target/release/bench_perf --compare "$E15_TMP/perf1.json" "$E15_TMP/perf1.json" \
  || { echo "bench_perf: self-compare flagged regressions"; exit 1; }
python3 - "$E15_TMP/perf1.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "vfpga-bench-perf/1", f"unexpected schema {doc['schema']}"
cases = doc["host"]["cases"]
for case in ["compile_cold", "compile_warm", "compile_disk_warm", "download_full",
             "download_partial", "download_delta", "ckpt_crash_replay", "ckpt_delta",
             "fleet_failover", "migrate_live", "macro_point"]:
    assert case in cases, f"missing case {case}"
    assert cases[case]["iters"] > 0, f"case {case} ran no iterations"
assert doc["sim"]["latency_ns"], "no simulated latency histograms"
assert any(k.startswith("system") for k in doc["sim"]["span_counts"]), \
    "no event-loop span counts"
print(f"bench_perf gate: {len(cases)} cases, schema {doc['schema']}")
PY

echo "==> bench_perf regression gate (pinned baseline)"
# A smoke-profile baseline measured on a known-good commit is pinned in
# the repo; the compare judges best-of-N (min_ns) and the generous
# tolerance absorbs host noise while still catching order-of-magnitude
# regressions. A flagged run is re-measured once on a quiet machine
# state before failing — a real regression reproduces, a loaded-host
# artifact does not. Refresh with:
#   ./target/release/bench_perf --smoke --threads 1 --out BENCH_<sha>.json
BASELINE="$(ls BENCH_*.json 2>/dev/null | sort | head -n 1 || true)"
if [ -n "$BASELINE" ]; then
  if ! ./target/release/bench_perf --compare "$BASELINE" "$E15_TMP/perf1.json" --tolerance-pct 400; then
    echo "bench_perf: flagged vs pinned $BASELINE; re-measuring once"
    ./target/release/bench_perf --smoke --threads 1 --out "$E15_TMP/perf_retry.json" > /dev/null
    ./target/release/bench_perf --compare "$BASELINE" "$E15_TMP/perf_retry.json" --tolerance-pct 400 \
      || { echo "bench_perf: regression against pinned $BASELINE (reproduced)"; exit 1; }
  fi
else
  echo "no pinned BENCH_*.json baseline found; skipping"
fi

echo "CI green."
